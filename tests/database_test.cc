#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "common/random.h"
#include "core/database.h"

namespace rda {
namespace {

// Configuration matrix: logging granularity x FORCE x RDA.
struct ConfigCase {
  LoggingMode mode;
  bool force;
  bool rda;
};

std::string CaseName(const ::testing::TestParamInfo<ConfigCase>& info) {
  std::string name =
      info.param.mode == LoggingMode::kPageLogging ? "Page" : "Record";
  name += info.param.force ? "Force" : "NoForce";
  name += info.param.rda ? "Rda" : "NoRda";
  return name;
}

class DatabaseMatrixTest : public ::testing::TestWithParam<ConfigCase> {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.array.data_pages_per_group = 4;
    options.array.parity_copies = 2;
    options.array.min_data_pages = 64;
    options.array.page_size = 128;
    options.buffer.capacity = 12;
    options.txn.logging_mode = GetParam().mode;
    options.txn.force = GetParam().force;
    options.txn.rda_undo = GetParam().rda;
    options.txn.record_size = 16;
    if (!GetParam().force) {
      options.checkpoint_interval_updates = 16;
    }
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  bool record_mode() const {
    return GetParam().mode == LoggingMode::kRecordLogging;
  }

  // Uniform write helper for both modes.
  Status Write(TxnId txn, PageId page, uint8_t fill) {
    if (record_mode()) {
      return db_->WriteRecord(txn, page, 0, std::vector<uint8_t>(16, fill));
    }
    return db_->WritePage(txn, page,
                          std::vector<uint8_t>(db_->user_page_size(), fill));
  }

  uint8_t ReadCommitted(PageId page) {
    auto payload = db_->RawReadPage(page);
    EXPECT_TRUE(payload.ok());
    return (*payload)[kDataRegionOffset];
  }

  void ExpectParityConsistent() {
    auto ok = db_->VerifyAllParity();
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(*ok) << "parity inconsistent";
  }

  std::unique_ptr<Database> db_;
};

TEST_P(DatabaseMatrixTest, CommitDurableAcrossCrash) {
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(Write(*txn, 3, 0x5A).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  db_->Crash();
  ASSERT_TRUE(db_->Recover().ok());
  EXPECT_EQ(ReadCommitted(3), 0x5A);
  ExpectParityConsistent();
}

TEST_P(DatabaseMatrixTest, AbortLeavesNoTrace) {
  auto setup = db_->Begin();
  ASSERT_TRUE(Write(*setup, 3, 0x11).ok());
  ASSERT_TRUE(db_->Commit(*setup).ok());
  auto txn = db_->Begin();
  ASSERT_TRUE(Write(*txn, 3, 0x22).ok());
  ASSERT_TRUE(db_->Abort(*txn).ok());
  db_->Crash();
  ASSERT_TRUE(db_->Recover().ok());
  EXPECT_EQ(ReadCommitted(3), 0x11);
  ExpectParityConsistent();
}

TEST_P(DatabaseMatrixTest, InFlightTransactionRolledBackByRecovery) {
  auto setup = db_->Begin();
  ASSERT_TRUE(Write(*setup, 5, 0x33).ok());
  ASSERT_TRUE(db_->Commit(*setup).ok());
  auto txn = db_->Begin();
  ASSERT_TRUE(Write(*txn, 5, 0x44).ok());
  // Force the uncommitted page onto disk to make recovery work for it.
  Frame* frame = db_->txn_manager()->pool()->Lookup(5);
  ASSERT_NE(frame, nullptr);
  ASSERT_TRUE(db_->txn_manager()->pool()->PropagateFrame(frame).ok());
  db_->Crash();
  ASSERT_TRUE(db_->Recover().ok());
  EXPECT_EQ(ReadCommitted(5), 0x33);
  ExpectParityConsistent();
}

TEST_P(DatabaseMatrixTest, ManyTransactionsRandomizedConsistency) {
  Random rng(GetParam().force ? 101 : 202);
  std::map<PageId, uint8_t> expected;
  for (int i = 0; i < 60; ++i) {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    const PageId page = static_cast<PageId>(rng.Uniform(db_->num_pages()));
    const uint8_t fill = static_cast<uint8_t>(rng.UniformRange(1, 250));
    ASSERT_TRUE(Write(*txn, page, fill).ok());
    if (rng.Bernoulli(0.25)) {
      ASSERT_TRUE(db_->Abort(*txn).ok());
    } else {
      ASSERT_TRUE(db_->Commit(*txn).ok());
      expected[page] = fill;
    }
  }
  db_->Crash();
  ASSERT_TRUE(db_->Recover().ok());
  for (const auto& [page, fill] : expected) {
    EXPECT_EQ(ReadCommitted(page), fill) << "page " << page;
  }
  ExpectParityConsistent();
}

TEST_P(DatabaseMatrixTest, SurvivesDiskFailureAfterCommits) {
  for (PageId page = 0; page < 16; ++page) {
    auto txn = db_->Begin();
    ASSERT_TRUE(Write(*txn, page, static_cast<uint8_t>(page + 1)).ok());
    ASSERT_TRUE(db_->Commit(*txn).ok());
  }
  // Make everything durable before pulling the disk.
  ASSERT_TRUE(db_->Checkpoint().ok());
  ASSERT_TRUE(db_->FailDisk(0).ok());
  for (PageId page = 0; page < 16; ++page) {
    EXPECT_EQ(ReadCommitted(page), page + 1) << "degraded read " << page;
  }
  auto report = db_->RebuildDisk(0);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->undo_coverage_lost.empty());
  for (PageId page = 0; page < 16; ++page) {
    EXPECT_EQ(ReadCommitted(page), page + 1) << "rebuilt read " << page;
  }
  ExpectParityConsistent();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DatabaseMatrixTest,
    ::testing::Values(ConfigCase{LoggingMode::kPageLogging, true, true},
                      ConfigCase{LoggingMode::kPageLogging, true, false},
                      ConfigCase{LoggingMode::kPageLogging, false, true},
                      ConfigCase{LoggingMode::kPageLogging, false, false},
                      ConfigCase{LoggingMode::kRecordLogging, true, true},
                      ConfigCase{LoggingMode::kRecordLogging, true, false},
                      ConfigCase{LoggingMode::kRecordLogging, false, true},
                      ConfigCase{LoggingMode::kRecordLogging, false, false}),
    CaseName);

TEST(DatabaseOpenTest, RejectsInconsistentOptions) {
  DatabaseOptions options;
  options.txn.rda_undo = true;
  options.array.parity_copies = 1;
  EXPECT_TRUE(Database::Open(options).status().IsInvalidArgument());

  DatabaseOptions options2;
  options2.txn.force = false;
  options2.txn.log_after_images = false;
  EXPECT_TRUE(Database::Open(options2).status().IsInvalidArgument());
}

TEST(DatabaseOpenTest, SinglParityBaselineWorks) {
  DatabaseOptions options;
  options.array.parity_copies = 1;
  options.txn.rda_undo = false;
  options.array.min_data_pages = 32;
  options.array.page_size = 128;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  std::vector<uint8_t> bytes((*db)->user_page_size(), 0x21);
  ASSERT_TRUE((*db)->WritePage(*txn, 0, bytes).ok());
  ASSERT_TRUE((*db)->Commit(*txn).ok());
  auto ok = (*db)->VerifyAllParity();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST(DatabaseStatsTest, TransferAccountingMoves) {
  DatabaseOptions options;
  options.array.min_data_pages = 32;
  options.array.page_size = 128;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  const uint64_t before = (*db)->TotalPageTransfers();
  auto txn = (*db)->Begin();
  std::vector<uint8_t> bytes((*db)->user_page_size(), 0x21);
  ASSERT_TRUE((*db)->WritePage(*txn, 0, bytes).ok());
  ASSERT_TRUE((*db)->Commit(*txn).ok());
  EXPECT_GT((*db)->TotalPageTransfers(), before);
}


TEST(DatabaseStatsTest, SnapshotCoherent) {
  DatabaseOptions options;
  options.array.min_data_pages = 32;
  options.array.page_size = 128;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  std::vector<uint8_t> bytes((*db)->user_page_size(), 0x33);
  ASSERT_TRUE((*db)->WritePage(*txn, 0, bytes).ok());
  ASSERT_TRUE((*db)->Commit(*txn).ok());
  auto t2 = (*db)->Begin();
  ASSERT_TRUE((*db)->WritePage(*t2, 4, bytes).ok());
  ASSERT_TRUE((*db)->Abort(*t2).ok());

  const Database::StatsSnapshot s = (*db)->Stats();
  EXPECT_EQ(s.txn.begun, 2u);
  EXPECT_EQ(s.txn.committed, 1u);
  EXPECT_EQ(s.txn.aborted, 1u);
  EXPECT_GT(s.array.page_writes, 0u);
  EXPECT_GT(s.log.page_writes, 0u);
  EXPECT_GT(s.array_total_busy_ms, 0.0);
  EXPECT_EQ(s.dirty_groups, 0u);
  EXPECT_EQ(s.failed_disks, 0u);

  const std::string text = (*db)->FormatStats();
  EXPECT_NE(text.find("array:"), std::string::npos);
  EXPECT_NE(text.find("txns:   2 begun, 1 committed, 1 aborted"),
            std::string::npos);
}

}  // namespace
}  // namespace rda
