// Systematic crash-point sweep: a fixed, deterministic workload script is
// replayed from scratch; for EVERY prefix length k the database is crashed
// after k steps and recovered, and the durable state must equal exactly
// what had been committed by step k. This exercises every crash window
// between operations of the protocol (between steal and EOT, between EOT
// and twin finalization, mid-abort, around checkpoints).
#include <gtest/gtest.h>

#include <map>
#include <variant>

#include "core/database.h"
#include "fuzz/runner.h"
#include "fuzz/schedule.h"

namespace rda {
namespace {

enum class OpKind : uint8_t {
  kBegin,
  kWrite,       // txn slot, page, fill
  kSteal,       // force page to disk
  kCommit,      // txn slot
  kAbort,       // txn slot
  kCheckpoint,
};

struct Op {
  OpKind kind;
  int txn = 0;      // Index into the script's transaction slots.
  PageId page = 0;
  uint8_t fill = 0;
};

// A hand-designed script that covers the interesting shapes: unlogged
// steals (distinct groups), logged steals (same group), re-modification
// after steal, aborts with and without steals, interleaved transactions
// sharing a group, checkpoints, and winners whose pages never hit disk.
// Groups are 4 pages wide (pages 0-3 = group 0, 4-7 = group 1, ...).
std::vector<Op> Script() {
  return {
      {OpKind::kBegin, 0},
      {OpKind::kWrite, 0, 0, 0x10},   // t0 writes group 0.
      {OpKind::kSteal, 0, 0},         // Unlogged steal.
      {OpKind::kWrite, 0, 4, 0x11},   // t0 writes group 1.
      {OpKind::kCommit, 0},           // Winner with dirty groups.

      {OpKind::kBegin, 1},
      {OpKind::kWrite, 1, 0, 0x20},   // Overwrite committed page.
      {OpKind::kWrite, 1, 1, 0x21},   // Same group: second steal logs.
      {OpKind::kSteal, 1, 0},
      {OpKind::kSteal, 1, 1},
      {OpKind::kAbort, 1},            // Runtime abort: parity + log undo.

      {OpKind::kBegin, 2},
      {OpKind::kWrite, 2, 8, 0x30},
      {OpKind::kCheckpoint, 0},       // ACC checkpoint steals page 8.
      {OpKind::kWrite, 2, 8, 0x31},   // Re-modify after checkpoint steal.
      {OpKind::kSteal, 2, 8},         // Unlogged repeat.
      {OpKind::kBegin, 3},
      {OpKind::kWrite, 3, 9, 0x40},   // Same group as t2's dirty page.
      {OpKind::kSteal, 3, 9},         // Logged steal into dirty group.
      {OpKind::kCommit, 3},
      {OpKind::kCommit, 2},

      {OpKind::kBegin, 4},
      {OpKind::kWrite, 4, 12, 0x50},  // Buffered only, never stolen.
      {OpKind::kBegin, 5},
      {OpKind::kWrite, 5, 16, 0x60},
      {OpKind::kSteal, 5, 16},
      {OpKind::kCommit, 5},
      {OpKind::kAbort, 4},

      {OpKind::kBegin, 6},
      {OpKind::kWrite, 6, 0, 0x70},   // Hot page again.
      {OpKind::kSteal, 6, 0},
      {OpKind::kCheckpoint, 0},
  };
}

struct CrashPointCase {
  bool force;
  bool rda;
  LoggingMode mode = LoggingMode::kPageLogging;
};

std::string CaseName(const ::testing::TestParamInfo<CrashPointCase>& info) {
  std::string name = info.param.force ? "Force" : "NoForce";
  name += info.param.rda ? "Rda" : "NoRda";
  name += info.param.mode == LoggingMode::kRecordLogging ? "Record" : "";
  return name;
}

class CrashPointTest : public ::testing::TestWithParam<CrashPointCase> {
 protected:
  std::unique_ptr<Database> OpenDb() {
    DatabaseOptions options;
    options.array.data_pages_per_group = 4;
    options.array.parity_copies = 2;
    options.array.min_data_pages = 32;
    options.array.page_size = 128;
    options.buffer.capacity = 16;
    options.txn.force = GetParam().force;
    options.txn.rda_undo = GetParam().rda;
    options.txn.logging_mode = GetParam().mode;
    options.txn.record_size = 24;
    auto db = Database::Open(options);
    EXPECT_TRUE(db.ok());
    return std::move(db).value();
  }
};

TEST_P(CrashPointTest, EveryPrefixRecoversToCommittedState) {
  const std::vector<Op> script = Script();
  for (size_t crash_at = 0; crash_at <= script.size(); ++crash_at) {
    std::unique_ptr<Database> db = OpenDb();
    std::map<int, TxnId> txns;
    std::map<int, std::map<PageId, uint8_t>> pending;
    std::map<PageId, uint8_t> committed;

    for (size_t i = 0; i < crash_at; ++i) {
      const Op& op = script[i];
      switch (op.kind) {
        case OpKind::kBegin: {
          auto txn = db->Begin();
          ASSERT_TRUE(txn.ok());
          txns[op.txn] = *txn;
          pending[op.txn].clear();
          break;
        }
        case OpKind::kWrite: {
          if (GetParam().mode == LoggingMode::kRecordLogging) {
            ASSERT_TRUE(db->WriteRecord(txns[op.txn], op.page, 0,
                                        std::vector<uint8_t>(24, op.fill))
                            .ok())
                << "step " << i;
          } else {
            ASSERT_TRUE(
                db->WritePage(txns[op.txn], op.page,
                              std::vector<uint8_t>(db->user_page_size(),
                                                   op.fill))
                    .ok())
                << "step " << i;
          }
          pending[op.txn][op.page] = op.fill;
          break;
        }
        case OpKind::kSteal: {
          Frame* frame = db->txn_manager()->pool()->Lookup(op.page);
          if (frame != nullptr && frame->dirty) {
            ASSERT_TRUE(
                db->txn_manager()->pool()->PropagateFrame(frame).ok());
          }
          break;
        }
        case OpKind::kCommit: {
          ASSERT_TRUE(db->Commit(txns[op.txn]).ok()) << "step " << i;
          for (const auto& [page, fill] : pending[op.txn]) {
            committed[page] = fill;
          }
          pending[op.txn].clear();
          break;
        }
        case OpKind::kAbort: {
          ASSERT_TRUE(db->Abort(txns[op.txn]).ok()) << "step " << i;
          pending[op.txn].clear();
          break;
        }
        case OpKind::kCheckpoint: {
          ASSERT_TRUE(db->Checkpoint().ok()) << "step " << i;
          break;
        }
      }
    }

    db->Crash();
    auto report = db->Recover();
    ASSERT_TRUE(report.ok())
        << "crash point " << crash_at << ": " << report.status().ToString();

    // Durable state == committed state as of the crash point; everything
    // else reads as the initial zero page.
    for (PageId page = 0; page < db->num_pages(); ++page) {
      auto payload = db->RawReadPage(page);
      ASSERT_TRUE(payload.ok());
      const uint8_t want =
          committed.contains(page) ? committed[page] : 0x00;
      ASSERT_EQ((*payload)[kDataRegionOffset], want)
          << "crash point " << crash_at << ", page " << page;
    }
    auto parity_ok = db->VerifyAllParity();
    ASSERT_TRUE(parity_ok.ok());
    ASSERT_TRUE(*parity_ok) << "crash point " << crash_at;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrashPointTest,
    ::testing::Values(
        CrashPointCase{true, true}, CrashPointCase{true, false},
        CrashPointCase{false, true}, CrashPointCase{false, false},
        CrashPointCase{true, true, LoggingMode::kRecordLogging},
        CrashPointCase{false, true, LoggingMode::kRecordLogging},
        CrashPointCase{false, false, LoggingMode::kRecordLogging}),
    CaseName);

// The same sweep with a second crash DURING recovery: recover, crash again
// immediately, recover again — convergence to the same state.
TEST_P(CrashPointTest, DoubleCrashConverges) {
  const std::vector<Op> script = Script();
  // Sample a few interesting crash points rather than all (runtime).
  for (const size_t crash_at :
       {size_t{5}, size_t{10}, size_t{19}, size_t{26}, script.size()}) {
    std::unique_ptr<Database> db = OpenDb();
    std::map<int, TxnId> txns;
    std::map<int, std::map<PageId, uint8_t>> pending;
    std::map<PageId, uint8_t> committed;
    for (size_t i = 0; i < crash_at && i < script.size(); ++i) {
      const Op& op = script[i];
      switch (op.kind) {
        case OpKind::kBegin: {
          auto txn = db->Begin();
          ASSERT_TRUE(txn.ok());
          txns[op.txn] = *txn;
          pending[op.txn].clear();
          break;
        }
        case OpKind::kWrite:
          if (GetParam().mode == LoggingMode::kRecordLogging) {
            ASSERT_TRUE(db->WriteRecord(txns[op.txn], op.page, 0,
                                        std::vector<uint8_t>(24, op.fill))
                            .ok());
          } else {
            ASSERT_TRUE(
                db->WritePage(txns[op.txn], op.page,
                              std::vector<uint8_t>(db->user_page_size(),
                                                   op.fill))
                    .ok());
          }
          pending[op.txn][op.page] = op.fill;
          break;
        case OpKind::kSteal: {
          Frame* frame = db->txn_manager()->pool()->Lookup(op.page);
          if (frame != nullptr && frame->dirty) {
            ASSERT_TRUE(
                db->txn_manager()->pool()->PropagateFrame(frame).ok());
          }
          break;
        }
        case OpKind::kCommit:
          ASSERT_TRUE(db->Commit(txns[op.txn]).ok());
          for (const auto& [page, fill] : pending[op.txn]) {
            committed[page] = fill;
          }
          break;
        case OpKind::kAbort:
          ASSERT_TRUE(db->Abort(txns[op.txn]).ok());
          break;
        case OpKind::kCheckpoint:
          ASSERT_TRUE(db->Checkpoint().ok());
          break;
      }
    }
    db->Crash();
    ASSERT_TRUE(db->Recover().ok());
    db->Crash();  // Again, immediately.
    ASSERT_TRUE(db->Recover().ok());
    for (const auto& [page, fill] : committed) {
      auto payload = db->RawReadPage(page);
      ASSERT_TRUE(payload.ok());
      ASSERT_EQ((*payload)[kDataRegionOffset], fill)
          << "crash point " << crash_at << ", page " << page;
    }
    auto parity_ok = db->VerifyAllParity();
    ASSERT_TRUE(parity_ok.ok());
    ASSERT_TRUE(*parity_ok);
  }
}

// ---------------------------------------------------------------------------
// Crash in the repair-on-read window: between reconstructing a faulty
// sector's content and writing it back (DESIGN.md section 10). The repair
// must be restartable — after recovery the fault is still there and the
// next read heals it for good.
// ---------------------------------------------------------------------------

class RepairCrashTest : public ::testing::Test {
 protected:
  void Open() {
    DatabaseOptions options;
    options.array.data_pages_per_group = 4;
    options.array.parity_copies = 2;
    options.array.min_data_pages = 32;
    options.array.page_size = 128;
    options.buffer.capacity = 16;
    options.txn.force = true;
    options.txn.rda_undo = true;
    options.fault.enabled = true;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  Status WriteTxn(PageId page, uint8_t fill) {
    auto txn = db_->Begin();
    RDA_RETURN_IF_ERROR(txn.status());
    RDA_RETURN_IF_ERROR(db_->WritePage(
        *txn, page, std::vector<uint8_t>(db_->user_page_size(), fill)));
    return db_->Commit(*txn);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(RepairCrashTest, CrashBetweenReconstructAndWriteBackOnDataRead) {
  Open();
  ASSERT_TRUE(WriteTxn(3, 0x3e).ok());
  const PhysicalLocation loc = db_->array()->layout().DataLocation(3);
  db_->array()->injector(loc.disk)->InjectLatentSector(loc.slot);

  // The repair reconstructs, then "crashes" before the write-back.
  db_->parity()->InjectCrashBeforeNextRepairWriteBack();
  auto payload = db_->RawReadPage(3);
  ASSERT_FALSE(payload.ok());
  EXPECT_TRUE(payload.status().IsAborted()) << payload.status().ToString();
  // Nothing was written: the latent error is still on the medium.
  EXPECT_TRUE(db_->array()->injector(loc.disk)->HasLatent(loc.slot));

  db_->Crash();
  ASSERT_TRUE(db_->Recover().ok());
  // The retried read completes the repair end to end.
  payload = db_->RawReadPage(3);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  EXPECT_EQ((*payload)[kDataRegionOffset], 0x3e);
  EXPECT_FALSE(db_->array()->injector(loc.disk)->HasLatent(loc.slot));
  EXPECT_EQ(db_->parity()->stats().latent_repairs, 1u);
  auto parity_ok = db_->VerifyAllParity();
  ASSERT_TRUE(parity_ok.ok());
  EXPECT_TRUE(*parity_ok);
}

TEST_F(RepairCrashTest, CrashBetweenReconstructAndWriteBackDuringScrub) {
  Open();
  ASSERT_TRUE(WriteTxn(5, 0x5f).ok());
  const PhysicalLocation loc = db_->array()->layout().DataLocation(5);
  db_->array()->injector(loc.disk)->InjectLatentSector(loc.slot);

  db_->parity()->InjectCrashBeforeNextRepairWriteBack();
  auto report = db_->Scrub();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsAborted()) << report.status().ToString();
  EXPECT_TRUE(db_->array()->injector(loc.disk)->HasLatent(loc.slot));

  // The restarted scrub pass heals the sector and then verifies clean.
  // (No recovery needed: the aborted repair wrote nothing back.)
  report = db_->Scrub();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->sectors_repaired, 1u);
  EXPECT_TRUE(report->repaired.empty());
  EXPECT_FALSE(db_->array()->injector(loc.disk)->HasLatent(loc.slot));
  auto payload = db_->RawReadPage(5);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ((*payload)[kDataRegionOffset], 0x5f);

  auto again = db_->Scrub();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->sectors_repaired, 0u);  // Nothing left to heal.
}

// Promoted fuzzer repro (minimized by the schedule shrinker). A NOFORCE
// checkpoint used to race the group-commit flush it overlapped with:
// LogManager::Truncate could discard a batch the leader was still writing,
// leaving commit records unreadable after the next crash — exactly the
// double-crash window this schedule drives (crash mid-stream with a
// mid-recovery crash injected, then the final crash). Pinned here so the
// Truncate/group-commit interlock never regresses.
TEST(FuzzRepro, CheckpointDuringGroupCommitThenDoubleCrash) {
  auto schedule = fuzz::Schedule::Parse(
      "rda-sched v1 seed=9177 algo=noforce,rda,page threads=1 steps=6 "
      "crash=21:2 fault=torn@9:3");
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
  auto outcome = fuzz::RunSchedule(*schedule);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->passed) << outcome->violation;
}

// Promoted fuzzer repro: a torn write landing on a stolen page right
// before a crash, under record logging without RDA undo — recovery must
// heal the torn image from parity before applying log undo, or the page
// survives as a mixed fill.
TEST(FuzzRepro, TornStolenPageHealedBeforeLogUndo) {
  auto schedule = fuzz::Schedule::Parse(
      "rda-sched v1 seed=311 algo=force,norda,record threads=1 steps=5 "
      "crash=17:0 fault=torn@12:1");
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
  auto outcome = fuzz::RunSchedule(*schedule);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->passed) << outcome->violation;
}

}  // namespace
}  // namespace rda
