// Online media rebuild: the array serves transactions WHILE a replaced
// disk is reconstructed group by group (DESIGN.md section 14). Covers the
// pending-bitmap session (on-demand repair, write promotion), the
// background MaintenanceService (auto-rebuild on escalation, pause /
// cancel / resume), the nasty windows (crash mid-rebuild, second disk
// failure mid-rebuild) and the parallel VerifyAllParity.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>

#include "common/random.h"
#include "core/database.h"
#include "fuzz/runner.h"
#include "fuzz/schedule.h"

namespace rda {
namespace {

DatabaseOptions BaseOptions() {
  DatabaseOptions options;
  options.array.data_pages_per_group = 4;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 48;
  options.array.page_size = 128;
  options.buffer.capacity = 12;
  options.txn.force = true;
  options.txn.rda_undo = true;
  return options;
}

bool WaitFor(const std::function<bool()>& done,
             std::chrono::milliseconds timeout = std::chrono::seconds(20)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return done();
}

class OnlineRebuildTest : public ::testing::Test {
 protected:
  void Open(const DatabaseOptions& options = BaseOptions()) {
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  Status WriteTxn(PageId page, uint8_t fill) {
    auto txn = db_->Begin();
    RDA_RETURN_IF_ERROR(txn.status());
    RDA_RETURN_IF_ERROR(db_->WritePage(
        *txn, page, std::vector<uint8_t>(db_->user_page_size(), fill)));
    return db_->Commit(*txn);
  }

  void Populate() {
    for (PageId page = 0; page < db_->num_pages(); ++page) {
      ASSERT_TRUE(WriteTxn(page, static_cast<uint8_t>(page + 1)).ok());
    }
  }

  uint8_t DiskByte(PageId page) {
    auto payload = db_->RawReadPage(page);
    EXPECT_TRUE(payload.ok()) << payload.status().ToString();
    return (*payload)[kDataRegionOffset];
  }

  DiskId DataDiskOf(PageId page) {
    return db_->array()->layout().DataLocation(page).disk;
  }

  void VerifyAllPages() {
    for (PageId page = 0; page < db_->num_pages(); ++page) {
      EXPECT_EQ(DiskByte(page), static_cast<uint8_t>(page + 1))
          << "page " << page;
    }
  }

  void ExpectParityConsistent() {
    auto ok = db_->VerifyAllParity();
    ASSERT_TRUE(ok.ok()) << ok.status().ToString();
    EXPECT_TRUE(*ok);
  }

  std::unique_ptr<Database> db_;
};

// ---------------------------------------------------------------------------
// Tentpole: the online rebuild converges to the same committed state as the
// quiescent one, for every algorithm class in the paper's taxonomy.
// ---------------------------------------------------------------------------

struct AlgoConfig {
  const char* name;
  LoggingMode mode;
  bool force;
};

TEST(OnlineVsQuiesced, EndStateMatchesForAllAlgorithmClasses) {
  const AlgoConfig configs[] = {
      {"page/FORCE", LoggingMode::kPageLogging, true},
      {"page/notFORCE", LoggingMode::kPageLogging, false},
      {"record/FORCE", LoggingMode::kRecordLogging, true},
      {"record/notFORCE", LoggingMode::kRecordLogging, false},
  };
  for (const AlgoConfig& config : configs) {
    SCOPED_TRACE(config.name);
    DatabaseOptions options = BaseOptions();
    options.txn.logging_mode = config.mode;
    options.txn.force = config.force;

    auto quiesced_or = Database::Open(options);
    auto online_or = Database::Open(options);
    ASSERT_TRUE(quiesced_or.ok()) << quiesced_or.status().ToString();
    ASSERT_TRUE(online_or.ok()) << online_or.status().ToString();
    std::unique_ptr<Database> quiesced = std::move(quiesced_or).value();
    std::unique_ptr<Database> online = std::move(online_or).value();

    const auto populate = [&](Database* db) {
      for (PageId page = 0; page < db->num_pages(); ++page) {
        auto txn = db->Begin();
        ASSERT_TRUE(txn.ok());
        const uint8_t fill = static_cast<uint8_t>(page * 3 + 7);
        if (config.mode == LoggingMode::kRecordLogging) {
          std::vector<uint8_t> record(options.txn.record_size, fill);
          ASSERT_TRUE(db->WriteRecord(*txn, page, 0, record).ok());
        } else {
          std::vector<uint8_t> bytes(db->user_page_size(), fill);
          ASSERT_TRUE(db->WritePage(*txn, page, bytes).ok());
        }
        ASSERT_TRUE(db->Commit(*txn).ok());
      }
      // notFORCE keeps committed pages in the pool; checkpoint so the
      // on-disk state both rebuild flavours operate on is identical.
      ASSERT_TRUE(db->Checkpoint().ok());
    };
    populate(quiesced.get());
    populate(online.get());

    const DiskId victim = 2;
    ASSERT_TRUE(quiesced->FailDisk(victim).ok());
    ASSERT_TRUE(online->FailDisk(victim).ok());

    auto quiesced_report = quiesced->RebuildDisk(victim);
    ASSERT_TRUE(quiesced_report.ok()) << quiesced_report.status().ToString();
    auto online_report = online->RebuildDiskOnline(victim);
    ASSERT_TRUE(online_report.ok()) << online_report.status().ToString();
    EXPECT_TRUE(online_report->completed);
    EXPECT_FALSE(online->parity()->OnlineRebuildActive());
    EXPECT_TRUE(online->array()->RebuildingDisks().empty());

    // Byte-identical committed state, page by page.
    for (PageId page = 0; page < online->num_pages(); ++page) {
      auto a = quiesced->RawReadPage(page);
      auto b = online->RawReadPage(page);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      EXPECT_EQ(*a, *b) << "page " << page;
    }
    for (Database* db : {quiesced.get(), online.get()}) {
      auto ok = db->VerifyAllParity();
      ASSERT_TRUE(ok.ok());
      EXPECT_TRUE(*ok);
    }
  }
}

// ---------------------------------------------------------------------------
// On-demand repair and write promotion while the sweep has not arrived.
// ---------------------------------------------------------------------------

TEST_F(OnlineRebuildTest, ForegroundTrafficServedAndPromotedDuringSession) {
  Open();
  Populate();
  const DiskId victim = DataDiskOf(0);
  // Cache page 0 in the buffer pool: the write below then needs no fetch,
  // so it reaches Propagate while the group is still pending — the pure
  // write-promotion path (a fetch would repair the group on demand first).
  {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(db_->ReadPage(*txn, 0, &bytes).ok());
    ASSERT_TRUE(db_->Commit(*txn).ok());
  }
  ASSERT_TRUE(db_->FailDisk(victim).ok());
  auto info = db_->parity()->BeginOnlineRebuild(victim);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  ASSERT_GT(info->groups_pending, 0u);
  EXPECT_TRUE(db_->parity()->OnlineRebuildActive());
  EXPECT_TRUE(db_->array()->DiskRebuilding(victim));

  // A committed write to a page on the replaced disk persists directly and
  // retires its group from the sweep (write promotion).
  ASSERT_TRUE(db_->parity()->OnlineGroupPending(0));
  ASSERT_TRUE(WriteTxn(0, 0xAA).ok());
  EXPECT_FALSE(db_->parity()->OnlineGroupPending(0));
  EXPECT_GE(db_->parity()->OnlineWritePromotions(), 1u);

  // A foreground read of a not-yet-rebuilt page repairs its group on
  // demand — the zeroed replacement medium is never served.
  PageId probe = 0;
  for (PageId page = db_->num_pages(); page-- > 0;) {
    if (DataDiskOf(page) == victim &&
        db_->parity()->OnlineGroupPending(
            db_->array()->layout().GroupOf(page))) {
      probe = page;
      break;
    }
  }
  ASSERT_NE(probe, 0u);
  EXPECT_EQ(DiskByte(probe), static_cast<uint8_t>(probe + 1));
  EXPECT_GE(db_->parity()->OnlineOnDemandRepairs(), 1u);
  EXPECT_FALSE(db_->parity()->OnlineGroupPending(
      db_->array()->layout().GroupOf(probe)));

  // The background sweep finishes whatever the foreground did not touch;
  // every group is accounted for exactly once.
  auto report = db_->RebuildDiskOnline(victim);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->completed);
  const uint64_t cleared = report->groups_background +
                           report->groups_on_demand +
                           report->write_promotions;
  EXPECT_EQ(cleared, info->groups_pending);
  EXPECT_FALSE(db_->parity()->OnlineRebuildActive());
  EXPECT_TRUE(db_->array()->RebuildingDisks().empty());

  EXPECT_EQ(DiskByte(0), 0xAA);
  for (PageId page = 1; page < db_->num_pages(); ++page) {
    EXPECT_EQ(DiskByte(page), static_cast<uint8_t>(page + 1));
  }
  ExpectParityConsistent();
}

TEST_F(OnlineRebuildTest, OnDemandRepairIsIdempotentAgainstTheSweep) {
  Open();
  Populate();
  const DiskId victim = 1;
  ASSERT_TRUE(db_->FailDisk(victim).ok());
  auto info = db_->parity()->BeginOnlineRebuild(victim);
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  // Touch EVERY page first: all pending groups are repaired on demand, so
  // the sweep that follows must find nothing left to do (the pending bit
  // protocol makes repair-on-access and the sweep idempotent).
  for (PageId page = 0; page < db_->num_pages(); ++page) {
    EXPECT_EQ(DiskByte(page), static_cast<uint8_t>(page + 1));
  }
  EXPECT_EQ(db_->parity()->OnlineRebuildGroupsRemaining(), 0u);
  EXPECT_EQ(db_->parity()->OnlineOnDemandRepairs(), info->groups_pending);

  auto report = db_->RebuildDiskOnline(victim);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->completed);
  EXPECT_EQ(report->groups_background, 0u);
  EXPECT_EQ(report->groups_on_demand, info->groups_pending);
  VerifyAllPages();
  ExpectParityConsistent();
}

// ---------------------------------------------------------------------------
// Nasty window 1: crash in the middle of an online rebuild. The persistent
// rebuilding flag makes Recover() fail the half-written medium and redo the
// rebuild before normal crash recovery.
// ---------------------------------------------------------------------------

TEST_F(OnlineRebuildTest, CrashMidOnlineRebuildConvergesOnRecover) {
  Open();
  Populate();
  const DiskId victim = 2;
  ASSERT_TRUE(db_->FailDisk(victim).ok());
  auto info = db_->parity()->BeginOnlineRebuild(victim);
  ASSERT_TRUE(info.ok()) << info.status().ToString();

  // Rebuild only the first few groups, then crash: the rest of the medium
  // still holds stale zeros that MUST NOT survive recovery.
  uint32_t rebuilt = 0;
  for (GroupId group = 0; group < db_->array()->num_groups() && rebuilt < 3;
       ++group) {
    bool did_work = false;
    auto outcome = db_->parity()->RebuildGroupIfPending(group, &did_work);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (did_work) {
      ++rebuilt;
    }
  }
  ASSERT_GT(db_->parity()->OnlineRebuildGroupsRemaining(), 0u);

  db_->Crash();
  ASSERT_FALSE(db_->array()->RebuildingDisks().empty());
  auto report = db_->Recover();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(db_->array()->RebuildingDisks().empty());
  EXPECT_EQ(db_->array()->NumFailedDisks(), 0u);
  VerifyAllPages();
  ExpectParityConsistent();
}

// ---------------------------------------------------------------------------
// Nasty window 2: a second disk fails while the first is rebuilding online.
// Single parity cannot reconstruct the remaining groups: typed DataLoss,
// and the archive restores the committed state.
// ---------------------------------------------------------------------------

TEST_F(OnlineRebuildTest, SecondFailureDuringOnlineRebuildIsDataLoss) {
  Open();
  Populate();
  ASSERT_TRUE(db_->TakeArchive().ok());
  const DiskId first = 1;
  const DiskId second = 3;
  ASSERT_TRUE(db_->FailDisk(first).ok());
  auto info = db_->parity()->BeginOnlineRebuild(first);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  ASSERT_TRUE(db_->FailDisk(second).ok());

  auto report = db_->RebuildDiskOnline(first);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsDataLoss()) << report.status().ToString();

  auto restored = db_->RestoreFromArchive();
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(db_->array()->NumFailedDisks(), 0u);
  EXPECT_TRUE(db_->array()->RebuildingDisks().empty());
  EXPECT_FALSE(db_->parity()->OnlineRebuildActive());
  VerifyAllPages();
  ExpectParityConsistent();
}

// ---------------------------------------------------------------------------
// Satellite: RepairEscalations reports partial outcomes instead of dying on
// the first failed rebuild (two-disk escalation regression).
// ---------------------------------------------------------------------------

TEST_F(OnlineRebuildTest, TwoDiskEscalationReportsBothUnrepaired) {
  DatabaseOptions options = BaseOptions();
  options.fault.enabled = true;
  options.io.disk_error_budget = 1;
  Open(options);
  Populate();
  ASSERT_TRUE(db_->TakeArchive().ok());

  // Exhaust the one-error budget on two different disks: both escalate
  // (force-fail), which exceeds the single-failure model.
  const DiskId d0 = DataDiskOf(0);
  // A page on another disk AND in another parity group, so the first
  // strike's reconstruction does not collide with the second fault.
  PageId other = 0;
  for (PageId page = 1; page < db_->num_pages(); ++page) {
    if (DataDiskOf(page) != d0 &&
        db_->array()->layout().GroupOf(page) !=
            db_->array()->layout().GroupOf(0)) {
      other = page;
      break;
    }
  }
  ASSERT_NE(other, 0u);
  const DiskId d1 = DataDiskOf(other);
  db_->array()->injector(d0)->InjectLatentSector(
      db_->array()->layout().DataLocation(0).slot);
  db_->array()->injector(d1)->InjectLatentSector(
      db_->array()->layout().DataLocation(other).slot);
  EXPECT_EQ(DiskByte(0), 1u);  // Served degraded; d0 escalates.
  // The second strike escalates d1 too; the read itself may fail typed
  // (reconstructing through a group that spans the already-failed d0).
  (void)db_->RawReadPage(other);
  ASSERT_EQ(db_->array()->EscalatedDisks().size(), 2u);

  auto repairs = db_->RepairEscalations();
  ASSERT_TRUE(repairs.ok()) << repairs.status().ToString();
  // Neither disk is repairable while the other is down, but the pass walks
  // BOTH in disk order and reports them typed instead of erroring out.
  EXPECT_EQ(repairs->repaired, 0u);
  ASSERT_EQ(repairs->unrepaired.size(), 2u);
  EXPECT_EQ(repairs->unrepaired[0], std::min(d0, d1));
  EXPECT_EQ(repairs->unrepaired[1], std::max(d0, d1));
  EXPECT_FALSE(repairs->first_error.ok());
  EXPECT_TRUE(repairs->first_error.IsFailedPrecondition())
      << repairs->first_error.ToString();

  auto restored = db_->RestoreFromArchive();
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  VerifyAllPages();
  ExpectParityConsistent();
}

// ---------------------------------------------------------------------------
// Satellite: VerifyAllParity is sharded over the recovery pool and returns
// the same verdict at every thread count.
// ---------------------------------------------------------------------------

TEST(ParallelVerify, SerialAndShardedAgree) {
  for (const uint32_t threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    DatabaseOptions options = BaseOptions();
    options.recovery.recovery_threads = threads;
    auto db_or = Database::Open(options);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    std::unique_ptr<Database> db = std::move(db_or).value();
    for (PageId page = 0; page < db->num_pages(); ++page) {
      auto txn = db->Begin();
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE(db->WritePage(*txn, page,
                                std::vector<uint8_t>(db->user_page_size(),
                                                     0x5A))
                      .ok());
      ASSERT_TRUE(db->Commit(*txn).ok());
    }
    auto healthy = db->VerifyAllParity();
    ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
    EXPECT_TRUE(*healthy);

    // Corrupt the valid twin of group 0 behind the engine's back: every
    // thread count must spot it.
    const GroupState& state = db->parity()->directory().Get(0);
    const PhysicalLocation loc =
        db->array()->layout().ParityLocation(0, state.valid_twin);
    PageImage bogus(db->array()->page_size());
    bogus.header.parity_state = ParityState::kCommitted;
    bogus.header.timestamp = 1;
    bogus.payload[40] = 0xEE;
    ASSERT_TRUE(db->array()->disk(loc.disk)->Write(loc.slot, bogus).ok());
    auto corrupted = db->VerifyAllParity();
    ASSERT_TRUE(corrupted.ok()) << corrupted.status().ToString();
    EXPECT_FALSE(*corrupted);
  }
}

// ---------------------------------------------------------------------------
// MaintenanceService: escalation -> degraded -> background online rebuild
// -> healthy, with no RepairEscalations() polling.
// ---------------------------------------------------------------------------

TEST_F(OnlineRebuildTest, EscalationAutoTriggersBackgroundRebuild) {
  DatabaseOptions options = BaseOptions();
  options.fault.enabled = true;
  options.io.disk_error_budget = 1;
  options.maintenance.enabled = true;
  options.obs.enable_metrics = true;
  options.obs.enable_trace = true;
  Open(options);
  Populate();
  ASSERT_EQ(db_->maintenance()->health(), HealthState::kHealthy);

  const DiskId suspect = DataDiskOf(0);
  db_->array()->injector(suspect)->InjectLatentSector(
      db_->array()->layout().DataLocation(0).slot);
  // The healed read burns the whole budget: the disk force-fails and the
  // escalation listener queues the online rebuild — no polling involved.
  EXPECT_EQ(DiskByte(0), 1u);

  ASSERT_TRUE(WaitFor([&] {
    return db_->maintenance()->Progress().rebuilds_completed >= 1;
  })) << "background rebuild did not complete";
  ASSERT_TRUE(WaitFor([&] {
    return db_->maintenance()->health() == HealthState::kHealthy;
  }));
  EXPECT_EQ(db_->array()->NumFailedDisks(), 0u);
  EXPECT_TRUE(db_->array()->RebuildingDisks().empty());
  EXPECT_GE(db_->array()->policy_stats().escalations, 1u);
  VerifyAllPages();
  ExpectParityConsistent();

  // The health ladder was observable: healthy -> degraded -> rebuilding ->
  // healthy shows up as kHealthChange trace events.
  const std::string trace = obs::TraceToJson(*db_->obs()->trace());
  EXPECT_NE(trace.find("health_change"), std::string::npos);
}

TEST_F(OnlineRebuildTest, PauseCancelAndResumeBackgroundRebuild) {
  DatabaseOptions options = BaseOptions();
  options.maintenance.enabled = true;
  options.maintenance.auto_rebuild_on_escalation = false;
  Open(options);
  Populate();
  const DiskId victim = 0;
  ASSERT_TRUE(db_->FailDisk(victim).ok());

  // Paused before the job starts: the sweep parks before group 0, leaving
  // the whole bitmap pending while foreground reads still repair on demand.
  db_->maintenance()->Pause();
  ASSERT_TRUE(db_->maintenance()->RequestRebuild(victim));
  ASSERT_TRUE(WaitFor([&] {
    return db_->maintenance()->Progress().rebuild_active;
  }));
  MaintenanceProgress paused = db_->maintenance()->Progress();
  EXPECT_TRUE(paused.paused);
  EXPECT_EQ(paused.rebuild_groups_remaining, paused.rebuild_groups_total);
  EXPECT_EQ(db_->maintenance()->health(), HealthState::kRebuilding);
  EXPECT_EQ(DiskByte(1), 2u);  // On-demand repair during the pause.

  // Cancel: the job stops where it is but the session survives for resume.
  db_->maintenance()->CancelCurrent();
  ASSERT_TRUE(WaitFor([&] {
    return db_->maintenance()->Progress().jobs_cancelled >= 1;
  }));
  EXPECT_TRUE(db_->parity()->OnlineRebuildActive());

  // Re-queue: the sweep resumes from the surviving bitmap and finishes.
  ASSERT_TRUE(db_->maintenance()->RequestRebuild(victim));
  ASSERT_TRUE(WaitFor([&] {
    return db_->maintenance()->Progress().rebuilds_completed >= 1;
  }));
  ASSERT_TRUE(WaitFor([&] {
    return db_->maintenance()->health() == HealthState::kHealthy;
  }));
  EXPECT_FALSE(db_->parity()->OnlineRebuildActive());
  VerifyAllPages();
  ExpectParityConsistent();
}

// ---------------------------------------------------------------------------
// Soak: real concurrency — writers commit non-stop while the maintenance
// thread rebuilds the disk under them (run under TSan in CI). Zero
// foreground unavailability and a consistent end state.
// ---------------------------------------------------------------------------

TEST_F(OnlineRebuildTest, WritersCommitThroughoutBackgroundRebuildSoak) {
  DatabaseOptions options = BaseOptions();
  options.array.min_data_pages = 192;  // 48 groups: a sweep worth racing.
  options.buffer.capacity = 24;
  options.maintenance.enabled = true;
  options.maintenance.auto_rebuild_on_escalation = false;
  // 48 groups x 5 tokens = 240 tokens; a 150-token bucket stretches the
  // sweep past the initial burst so the writers genuinely race it.
  options.maintenance.rebuild_pages_per_sec = 150;
  Open(options);
  Populate();
  const DiskId victim = 2;
  ASSERT_TRUE(db_->FailDisk(victim).ok());

  // Writers own disjoint page ranges, so every commit must succeed: any
  // kBusy / IoError during the rebuild is an availability bug.
  constexpr uint32_t kWriters = 3;
  const PageId span = db_->num_pages() / kWriters;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> writers;
  for (uint32_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Random rng(/*seed=*/w + 1);
      const PageId base = w * span;
      while (!stop.load(std::memory_order_acquire)) {
        const PageId page = base + static_cast<PageId>(rng.Uniform(span));
        const uint8_t fill = static_cast<uint8_t>(page + 1);
        if (WriteTxn(page, fill).ok()) {
          commits.fetch_add(1, std::memory_order_relaxed);
        } else {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  ASSERT_TRUE(db_->maintenance()->RequestRebuild(victim));
  const bool rebuilt = WaitFor([&] {
    return db_->maintenance()->Progress().rebuilds_completed >= 1;
  });
  stop.store(true, std::memory_order_release);
  for (std::thread& thread : writers) {
    thread.join();
  }
  ASSERT_TRUE(rebuilt) << "background rebuild did not complete";
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(commits.load(), 0u);
  EXPECT_EQ(db_->array()->NumFailedDisks(), 0u);
  EXPECT_FALSE(db_->parity()->OnlineRebuildActive());
  VerifyAllPages();
  ExpectParityConsistent();
}

// Promoted fuzzer repro (minimized by the schedule shrinker). Four workers
// commit against a throttled online rebuild; the rebuild's cancellation
// plumbing shares WorkerPool::ParallelFor with on-demand repair, and a
// real I/O error from one chunk used to be masked by a racing kAborted
// from another — surfacing as a "clean" rebuild whose groups were never
// reconstructed. The oracle's parity + twin-structure invariants catch the
// masked error; pinned here so error-over-abort ranking never regresses.
TEST(FuzzRepro, OnlineRebuildUnderConcurrentCommitsReportsRealErrors) {
  auto schedule = fuzz::Schedule::Parse(
      "rda-sched v1 seed=4242 algo=force,rda,record threads=4 steps=10 "
      "crash=8:0 fault=failon@3:1:1500");
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
  auto outcome = fuzz::RunSchedule(*schedule);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->passed) << outcome->violation;
}

}  // namespace
}  // namespace rda
