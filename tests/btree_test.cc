#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "kv/btree.h"

namespace rda {
namespace {

DatabaseOptions DbOptions(uint32_t pages = 96) {
  DatabaseOptions options;
  options.array.data_pages_per_group = 4;
  options.array.parity_copies = 2;
  options.array.min_data_pages = pages;
  options.array.page_size = 256;
  options.buffer.capacity = 20;
  options.txn.force = false;
  options.checkpoint_interval_updates = 48;
  return options;
}

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override { Open(); }

  void Open(uint32_t pages = 96) {
    auto db = Database::Open(DbOptions(pages));
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    BTree::Options options;
    options.num_pages = db_->num_pages();
    auto tree = BTree::Attach(db_.get(), options);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    tree_ = std::move(tree).value();
  }

  void InsertCommitted(uint64_t key, uint64_t value) {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(tree_->Insert(*txn, key, value).ok()) << key;
    ASSERT_TRUE(db_->Commit(*txn).ok());
  }

  Result<uint64_t> GetCommitted(uint64_t key) {
    auto txn = db_->Begin();
    EXPECT_TRUE(txn.ok());
    auto value = tree_->Get(*txn, key);
    EXPECT_TRUE(db_->Commit(*txn).ok());
    return value;
  }

  void ExpectInvariants() {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    EXPECT_TRUE(tree_->CheckInvariants(*txn).ok());
    ASSERT_TRUE(db_->Commit(*txn).ok());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, InsertGetRoundTrip) {
  InsertCommitted(42, 4200);
  InsertCommitted(7, 700);
  auto a = GetCommitted(42);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, 4200u);
  auto b = GetCommitted(7);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, 700u);
  EXPECT_TRUE(GetCommitted(8).status().IsNotFound());
}

TEST_F(BTreeTest, OverwriteKeepsSingleEntry) {
  InsertCommitted(5, 1);
  InsertCommitted(5, 2);
  auto value = GetCommitted(5);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 2u);
  auto txn = db_->Begin();
  std::vector<std::pair<uint64_t, uint64_t>> all;
  ASSERT_TRUE(tree_->Scan(*txn, 0, UINT64_MAX, &all).ok());
  EXPECT_EQ(all.size(), 1u);
  ASSERT_TRUE(db_->Commit(*txn).ok());
}

TEST_F(BTreeTest, SplitsKeepEverythingFindable) {
  // Enough keys to force several leaf splits and a root split.
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    InsertCommitted(static_cast<uint64_t>(i * 7919 % 1000), i);
  }
  ExpectInvariants();
  for (int i = 0; i < n; ++i) {
    auto value = GetCommitted(static_cast<uint64_t>(i * 7919 % 1000));
    ASSERT_TRUE(value.ok()) << i;
  }
}

TEST_F(BTreeTest, ScanReturnsSortedRange) {
  for (uint64_t key = 0; key < 150; ++key) {
    InsertCommitted(key * 3, key);
  }
  auto txn = db_->Begin();
  std::vector<std::pair<uint64_t, uint64_t>> out;
  ASSERT_TRUE(tree_->Scan(*txn, 60, 120, &out).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  ASSERT_EQ(out.size(), 21u);  // 60, 63, ..., 120.
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, 60 + 3 * i);
    if (i > 0) {
      EXPECT_LT(out[i - 1].first, out[i].first);
    }
  }
}

TEST_F(BTreeTest, DeleteRemovesOnlyTarget) {
  for (uint64_t key = 0; key < 50; ++key) {
    InsertCommitted(key, key * 10);
  }
  auto txn = db_->Begin();
  ASSERT_TRUE(tree_->Delete(*txn, 25).ok());
  EXPECT_TRUE(tree_->Delete(*txn, 999).IsNotFound());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  EXPECT_TRUE(GetCommitted(25).status().IsNotFound());
  auto neighbor = GetCommitted(24);
  ASSERT_TRUE(neighbor.ok());
  EXPECT_EQ(*neighbor, 240u);
  ExpectInvariants();
}

TEST_F(BTreeTest, AbortedSplitRollsBackAtomically) {
  // Fill until the NEXT insert must split, then do that insert in a
  // transaction that aborts: the whole multi-page split disappears.
  const uint32_t cap = tree_->leaf_capacity();
  for (uint64_t key = 0; key < cap; ++key) {
    InsertCommitted(key, key);
  }
  auto txn = db_->Begin();
  ASSERT_TRUE(tree_->Insert(*txn, 1000, 1).ok());  // Forces the split.
  ASSERT_TRUE(db_->Abort(*txn).ok());

  EXPECT_TRUE(GetCommitted(1000).status().IsNotFound());
  for (uint64_t key = 0; key < cap; ++key) {
    auto value = GetCommitted(key);
    ASSERT_TRUE(value.ok()) << key;
    EXPECT_EQ(*value, key);
  }
  ExpectInvariants();
  // And the insert can be redone successfully afterwards.
  InsertCommitted(1000, 1);
  ExpectInvariants();
}

TEST_F(BTreeTest, CrashMidGrowthRecovers) {
  for (uint64_t key = 0; key < 120; ++key) {
    InsertCommitted(key, key + 7);
  }
  // A loser in flight across a split at crash time.
  auto loser = db_->Begin();
  ASSERT_TRUE(tree_->Insert(*loser, 5000, 1).ok());
  db_->Crash();
  ASSERT_TRUE(db_->Recover().ok());
  EXPECT_TRUE(GetCommitted(5000).status().IsNotFound());
  for (uint64_t key = 0; key < 120; ++key) {
    auto value = GetCommitted(key);
    ASSERT_TRUE(value.ok()) << key;
    EXPECT_EQ(*value, key + 7);
  }
  ExpectInvariants();
}

TEST_F(BTreeTest, RegionExhaustionSurfacesCleanly) {
  Open(/*pages=*/16);
  BTree::Options options;
  options.num_pages = 8;  // Tiny region: splits run out quickly.
  auto tree = BTree::Attach(db_.get(), options);
  ASSERT_TRUE(tree.ok());
  Status last = Status::Ok();
  for (uint64_t key = 0; key < 500 && last.ok(); ++key) {
    auto txn = db_->Begin();
    last = (*tree)->Insert(*txn, key, key);
    if (last.ok()) {
      ASSERT_TRUE(db_->Commit(*txn).ok());
    } else {
      ASSERT_TRUE(db_->Abort(*txn).ok());
    }
  }
  EXPECT_TRUE(last.IsBusy());
  // The aborted overflow insert left the tree intact.
  auto txn = db_->Begin();
  EXPECT_TRUE((*tree)->CheckInvariants(*txn).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
}

TEST_F(BTreeTest, AttachValidation) {
  DatabaseOptions record_mode = DbOptions();
  record_mode.txn.logging_mode = LoggingMode::kRecordLogging;
  auto db = Database::Open(record_mode);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(BTree::Attach(db->get(), BTree::Options{})
                  .status()
                  .IsInvalidArgument());
  BTree::Options bad;
  bad.num_pages = 100000;
  EXPECT_TRUE(BTree::Attach(db_.get(), bad).status().IsInvalidArgument());
}

TEST_F(BTreeTest, RandomizedOracleWithCrashesAndMediaFailure) {
  Random rng(4242);
  std::map<uint64_t, uint64_t> oracle;
  for (int step = 0; step < 400; ++step) {
    const uint64_t key = rng.Uniform(300);
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    const double dice = rng.NextDouble();
    if (dice < 0.6) {
      const uint64_t value = rng.Next();
      ASSERT_TRUE(tree_->Insert(*txn, key, value).ok());
      if (rng.Bernoulli(0.85)) {
        ASSERT_TRUE(db_->Commit(*txn).ok());
        oracle[key] = value;
      } else {
        ASSERT_TRUE(db_->Abort(*txn).ok());
      }
    } else if (dice < 0.8) {
      const Status status = tree_->Delete(*txn, key);
      ASSERT_TRUE(status.ok() || status.IsNotFound());
      if (rng.Bernoulli(0.85)) {
        ASSERT_TRUE(db_->Commit(*txn).ok());
        if (status.ok()) {
          oracle.erase(key);
        }
      } else {
        ASSERT_TRUE(db_->Abort(*txn).ok());
      }
    } else {
      auto value = tree_->Get(*txn, key);
      if (oracle.contains(key)) {
        ASSERT_TRUE(value.ok());
        EXPECT_EQ(*value, oracle[key]);
      } else {
        EXPECT_TRUE(value.status().IsNotFound());
      }
      ASSERT_TRUE(db_->Commit(*txn).ok());
    }
    if (step == 150) {
      db_->Crash();
      ASSERT_TRUE(db_->Recover().ok());
    }
    if (step == 300) {
      ASSERT_TRUE(db_->Checkpoint().ok());
      ASSERT_TRUE(db_->FailDisk(1).ok());
      ASSERT_TRUE(db_->RebuildDisk(1).ok());
    }
  }
  ExpectInvariants();
  // Full scan equals the oracle.
  auto txn = db_->Begin();
  std::vector<std::pair<uint64_t, uint64_t>> all;
  ASSERT_TRUE(tree_->Scan(*txn, 0, UINT64_MAX, &all).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  ASSERT_EQ(all.size(), oracle.size());
  size_t i = 0;
  for (const auto& [key, value] : oracle) {
    EXPECT_EQ(all[i].first, key);
    EXPECT_EQ(all[i].second, value);
    ++i;
  }
}

}  // namespace
}  // namespace rda
