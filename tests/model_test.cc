#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "model/figures.h"
#include "model/probabilities.h"
#include "model/reliability.h"

namespace rda::model {
namespace {

// ---------------------------------------------------------------------------
// Probability building blocks.
// ---------------------------------------------------------------------------

TEST(ProbabilityTest, LogProbabilityLimits) {
  ModelParams p;
  EXPECT_DOUBLE_EQ(LogProbability(p, 0), 0.0);
  EXPECT_NEAR(LogProbability(p, 1), 0.0, 1e-9);  // A lone page never logs.
  EXPECT_GT(LogProbability(p, 1e6), 0.99);       // Saturation.
}

TEST(ProbabilityTest, LogProbabilityMonotoneInK) {
  ModelParams p;
  double prev = 0;
  for (double k = 1; k < 2000; k *= 2) {
    const double pl = LogProbability(p, k);
    EXPECT_GE(pl, prev - 1e-12) << "k=" << k;
    EXPECT_GE(pl, 0.0);
    EXPECT_LE(pl, 1.0);
    prev = pl;
  }
}

// Monte-Carlo check of Section 5.1: throw K random pages at S pages
// organized in groups of N; the fraction that must be logged (i.e. are not
// the first hit in their group) matches 1 - E[X]/K.
TEST(ProbabilityTest, LogProbabilityMatchesMonteCarlo) {
  ModelParams p;
  p.S = 1000;
  p.N = 10;
  rda::Random rng(12345);
  for (const double k : {5.0, 20.0, 80.0, 200.0}) {
    const int trials = 600;
    double must_log = 0;
    double total = 0;
    for (int t = 0; t < trials; ++t) {
      std::vector<int> first_in_group(
          static_cast<size_t>(p.S / p.N), 0);
      for (int i = 0; i < static_cast<int>(k); ++i) {
        const auto page = rng.Uniform(static_cast<uint64_t>(p.S));
        const auto group = page / static_cast<uint64_t>(p.N);
        if (first_in_group[group]++ > 0) {
          must_log += 1;  // Group already covered by an earlier page.
        }
        total += 1;
      }
    }
    const double measured = must_log / total;
    EXPECT_NEAR(measured, LogProbability(p, k), 0.03) << "k=" << k;
  }
}

TEST(ProbabilityTest, ModifiedReplacementGrowsWithC) {
  const ModelParams p = ModelParams::HighUpdate();
  double prev = 0;
  for (double c = 0; c <= 0.95; c += 0.05) {
    const double pm = ModifiedReplacementProbability(p, c);
    EXPECT_GE(pm, prev - 1e-12);
    EXPECT_GE(pm, 0.0);
    EXPECT_LE(pm, 1.0);
    prev = pm;
  }
  EXPECT_NEAR(ModifiedReplacementProbability(p, 0.0),
              p.f_u * p.p_u, 1e-9);
}

TEST(ProbabilityTest, StealProbabilityBounds) {
  const ModelParams p = ModelParams::HighUpdate();
  for (double c = 0; c <= 1.0; c += 0.1) {
    const double ps = StealProbability(p, c);
    EXPECT_GE(ps, 0.0);
    EXPECT_LE(ps, 1.0);
  }
  // No communality and many competitors -> more stealing than at C=1.
  EXPECT_GT(StealProbability(p, 0.0), StealProbability(p, 0.99));
}

TEST(ProbabilityTest, SharedPagesMatchAppendixRecurrence) {
  const ModelParams p = ModelParams::HighUpdate();
  const double c = 0.7;
  // The paper's closed form s_u = B(1-(1-C s p_u/B)^{P f_u}) is the exact
  // solution of S(k) = S(k-1) + C s p_u (1 - S(k-1)/B), S(0) = 0 — iterate
  // that recurrence and require an exact match.
  double s_k = 0;
  const int steps = static_cast<int>(p.P * p.f_u);
  for (int k = 1; k <= steps; ++k) {
    s_k += c * p.s * p.p_u * (1.0 - s_k / p.B);
  }
  // P f_u is not an integer here (4.8); the closed form interpolates, so
  // compare against both bracketing step counts.
  const double closed = SharedBufferUpdatedPages(p, c);
  const double s_next = s_k + c * p.s * p.p_u * (1.0 - s_k / p.B);
  EXPECT_GE(closed, s_k - 1e-9);
  EXPECT_LE(closed, s_next + 1e-9);
}

TEST(ProbabilityTest, AvgLogEntryLength) {
  ModelParams p;
  p.d = 3;
  p.r = 100;
  p.e = 10;
  p.s = 10;
  EXPECT_DOUBLE_EQ(AvgLogEntryLength(p), (3 * 100 + 7 * 10) / 10.0);
}

TEST(ProbabilityTest, ChainTermSmallAndBounded) {
  EXPECT_DOUBLE_EQ(ChainTerm(0.0, 10), 0.0);
  EXPECT_DOUBLE_EQ(ChainTerm(1.0, 10), 0.0);
  EXPECT_GT(ChainTerm(0.5, 10), 0.0);
  EXPECT_LT(ChainTerm(0.5, 10), 1.0);
}

// ---------------------------------------------------------------------------
// Optimal checkpoint interval: numeric optimizer vs closed form.
// ---------------------------------------------------------------------------

TEST(ThroughputTest, NumericOptimumMatchesClosedForm) {
  const ModelParams p = ModelParams::HighUpdate();
  const double c_t = 50;
  const double c_c = 900;
  const double redo = 40;
  const double fixed = 200;
  auto c_s = [&](double i) {
    return (i / (2.0 * c_t)) * p.f_u * redo + fixed;
  };
  double interval = 0;
  double c_s_best = 0;
  OptimizeAccThroughput(p, c_t, c_c, c_s, &interval, &c_s_best);
  const double closed = ClosedFormOptimalInterval(p, c_t, c_c, redo, fixed);
  EXPECT_NEAR(interval, closed, 0.05 * closed);
}

TEST(ThroughputTest, TocThroughputShape) {
  ModelParams p;
  EXPECT_GT(TocThroughput(p, 10, 100), TocThroughput(p, 20, 100));
  EXPECT_GT(TocThroughput(p, 10, 100), TocThroughput(p, 10, 10000));
}

// ---------------------------------------------------------------------------
// Figure anchors — the quantitative results the paper states.
// ---------------------------------------------------------------------------

double Gain(AlgorithmClass algorithm, const ModelParams& p, double c) {
  const double base = Evaluate(algorithm, p, c, false).throughput;
  const double rda = Evaluate(algorithm, p, c, true).throughput;
  return 100.0 * (rda - base) / base;
}

TEST(FigureAnchorTest, Figure9AxisTicksReproduce) {
  // The published Figure 9 axis labels: high-update baseline 48800 (C=0)
  // and 54500 (C=1); RDA 77300 at C=1; high-retrieval baseline 91800 at
  // C=0. We allow 3% for reading error.
  const ModelParams hu = ModelParams::HighUpdate();
  const ModelParams hr = ModelParams::HighRetrieval();
  EXPECT_NEAR(EvalPageForceToc(hu, 0.0, false).throughput, 48800,
              0.03 * 48800);
  EXPECT_NEAR(EvalPageForceToc(hu, 1.0, false).throughput, 54500,
              0.03 * 54500);
  EXPECT_NEAR(EvalPageForceToc(hu, 1.0, true).throughput, 77300,
              0.03 * 77300);
  EXPECT_NEAR(EvalPageForceToc(hr, 0.0, false).throughput, 91800,
              0.03 * 91800);
}

TEST(FigureAnchorTest, Figure9GainIs42PercentAtC09HighUpdate) {
  // "for C = 0.9 the increase in throughput is about 42%".
  EXPECT_NEAR(Gain(AlgorithmClass::kPageForceToc,
                   ModelParams::HighUpdate(), 0.9),
              42.0, 4.0);
}

TEST(FigureAnchorTest, Figure9HighRetrievalGainSmaller) {
  // "the improvement ... is much more significant in the high update
  // frequency environment".
  const double hu = Gain(AlgorithmClass::kPageForceToc,
                         ModelParams::HighUpdate(), 0.9);
  const double hr = Gain(AlgorithmClass::kPageForceToc,
                         ModelParams::HighRetrieval(), 0.9);
  EXPECT_GT(hu, hr);
  EXPECT_GT(hr, 0.0);
}

TEST(FigureAnchorTest, RdaAlwaysHelpsAndGainGrowsWithC) {
  for (const AlgorithmClass algorithm :
       {AlgorithmClass::kPageForceToc, AlgorithmClass::kPageNoForceAcc,
        AlgorithmClass::kRecordForceToc,
        AlgorithmClass::kRecordNoForceAcc}) {
    for (const auto& params :
         {ModelParams::HighUpdate(), ModelParams::HighRetrieval()}) {
      for (double c = 0.0; c <= 0.901; c += 0.1) {
        const double gain = Gain(algorithm, params, c);
        EXPECT_GE(gain, -0.5)
            << AlgorithmName(algorithm) << " C=" << c;
      }
      // At high communality RDA must clearly win.
      EXPECT_GT(Gain(algorithm, params, 0.9), 0.0)
          << AlgorithmName(algorithm);
    }
  }
}

TEST(FigureAnchorTest, Figure10OrderingReverses) {
  // Page logging: notFORCE/ACC beats FORCE/TOC without RDA, but with RDA
  // "the situation is reversed ... the former outperforms ... by a
  // significant margin" (Section 5.2.2).
  const ModelParams hu = ModelParams::HighUpdate();
  for (double c = 0.3; c <= 0.91; c += 0.2) {
    const double force_base =
        EvalPageForceToc(hu, c, false).throughput;
    const double acc_base = EvalPageNoForceAcc(hu, c, false).throughput;
    EXPECT_GT(acc_base, force_base) << "no-RDA ordering at C=" << c;
    const double force_rda = EvalPageForceToc(hu, c, true).throughput;
    const double acc_rda = EvalPageNoForceAcc(hu, c, true).throughput;
    EXPECT_GT(force_rda, acc_rda) << "RDA ordering at C=" << c;
  }
}

TEST(FigureAnchorTest, Figure10AccGainInsignificant) {
  // "the improvement ... with the notFORCE discipline, ACC algorithm is
  // not significant in this case" (page logging).
  const double gain = Gain(AlgorithmClass::kPageNoForceAcc,
                           ModelParams::HighUpdate(), 0.9);
  EXPECT_LT(gain, 15.0);
  EXPECT_GE(gain, 0.0);
}

TEST(FigureAnchorTest, Figure12RecordAccBestAndGainNear14Percent) {
  // Record logging: notFORCE/ACC beats FORCE/TOC in the interesting
  // (higher communality) regime — Figures 11 and 12 cross — and the RDA
  // gain at C=0.9 (high update) is about 14%.
  const ModelParams hu = ModelParams::HighUpdate();
  for (double c = 0.5; c <= 0.91; c += 0.2) {
    EXPECT_GT(EvalRecordNoForceAcc(hu, c, false).throughput,
              EvalRecordForceToc(hu, c, false).throughput)
        << "C=" << c;
    EXPECT_GT(EvalRecordNoForceAcc(hu, c, true).throughput,
              EvalRecordForceToc(hu, c, true).throughput)
        << "C=" << c;
  }
  EXPECT_NEAR(Gain(AlgorithmClass::kRecordNoForceAcc, hu, 0.9), 14.0, 6.0);
}

TEST(FigureAnchorTest, Figure13RangeAndMonotonicity) {
  // Figure 13: benefit grows with s, ~6% at s=5 up to ~70% at s=45.
  const auto series = Figure13Series(0.9, {5, 15, 25, 35, 45});
  ASSERT_EQ(series.size(), 5u);
  EXPECT_NEAR(series.front().gain_percent, 6.0, 5.0);
  EXPECT_NEAR(series.back().gain_percent, 70.0, 12.0);
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].gain_percent, series[i - 1].gain_percent);
  }
}

TEST(FigureSeriesTest, SeriesWellFormed) {
  const auto series =
      FigureSeries(AlgorithmClass::kPageForceToc,
                   Environment::kHighUpdate, 11);
  ASSERT_EQ(series.size(), 11u);
  EXPECT_DOUBLE_EQ(series.front().c, 0.0);
  EXPECT_DOUBLE_EQ(series.back().c, 1.0);
  for (const auto& point : series) {
    EXPECT_GT(point.baseline, 0.0);
    EXPECT_GT(point.rda, 0.0);
  }
}

TEST(CostBreakdownTest, ComponentsPositiveAndAssembled) {
  for (const AlgorithmClass algorithm :
       {AlgorithmClass::kPageForceToc, AlgorithmClass::kPageNoForceAcc,
        AlgorithmClass::kRecordForceToc,
        AlgorithmClass::kRecordNoForceAcc}) {
    for (const bool rda : {false, true}) {
      const CostBreakdown cb =
          Evaluate(algorithm, ModelParams::HighUpdate(), 0.5, rda);
      EXPECT_GT(cb.c_r, 0.0);
      EXPECT_GT(cb.c_u, cb.c_r);
      EXPECT_GT(cb.c_l, 0.0);
      EXPECT_GT(cb.c_b, 0.0);
      EXPECT_GT(cb.c_t, 0.0);
      EXPECT_NEAR(cb.c_t,
                  0.2 * cb.c_r + 0.8 * cb.c_u, 1e-6);
      EXPECT_GT(cb.throughput, 0.0);
    }
  }
}

TEST(CostBreakdownTest, AccOptimizesInterval) {
  const CostBreakdown cb =
      EvalPageNoForceAcc(ModelParams::HighUpdate(), 0.5, false);
  EXPECT_GT(cb.interval, 0.0);
  EXPECT_GT(cb.c_c, 0.0);
  EXPECT_GT(cb.c_s, 0.0);
}


// Sweep: every algorithm/environment/C combination produces well-formed
// cost breakdowns (the "no NaN / no negative cost" safety net).
class ModelSweepTest
    : public ::testing::TestWithParam<std::tuple<AlgorithmClass, bool>> {};

TEST_P(ModelSweepTest, BreakdownWellFormedAcrossC) {
  const auto [algorithm, high_update] = GetParam();
  const ModelParams params = high_update ? ModelParams::HighUpdate()
                                         : ModelParams::HighRetrieval();
  for (double raw = 0.0; raw <= 1.001; raw += 0.05) {
    const double c = std::min(raw, 1.0);  // 0.05 steps accumulate error.
    for (const bool rda : {false, true}) {
      const CostBreakdown cb = Evaluate(algorithm, params, c, rda);
      EXPECT_TRUE(std::isfinite(cb.throughput)) << "C=" << c;
      EXPECT_GT(cb.throughput, 0.0) << "C=" << c;
      EXPECT_GE(cb.c_r, 0.0);
      EXPECT_GE(cb.c_l, 0.0);
      EXPECT_GE(cb.c_b, 0.0);
      EXPECT_GE(cb.c_s, 0.0);
      EXPECT_GE(cb.p_log, 0.0);
      EXPECT_LE(cb.p_log, 1.0);
      // Record logging can amortize below one transfer per transaction
      // at extreme C; just require a sane magnitude.
      EXPECT_LT(cb.throughput, 1e9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, ModelSweepTest,
    ::testing::Combine(
        ::testing::Values(AlgorithmClass::kPageForceToc,
                          AlgorithmClass::kPageNoForceAcc,
                          AlgorithmClass::kRecordForceToc,
                          AlgorithmClass::kRecordNoForceAcc),
        ::testing::Bool()));

TEST(FigureAnchorTest, TocThroughputMonotoneInC) {
  // More communality -> fewer faults -> more throughput for the TOC
  // algorithms (no checkpoint interactions).
  for (const AlgorithmClass algorithm :
       {AlgorithmClass::kPageForceToc, AlgorithmClass::kRecordForceToc}) {
    for (const bool rda : {false, true}) {
      double prev = 0;
      for (double c = 0.0; c <= 1.001; c += 0.1) {
        const double now =
            Evaluate(algorithm, ModelParams::HighUpdate(), c, rda)
                .throughput;
        EXPECT_GE(now, prev - 1e-6) << "C=" << c << " rda=" << rda;
        prev = now;
      }
    }
  }
}

TEST(FigureAnchorTest, RecordLoggingBeatsPageLoggingForceToc) {
  // Section 5.3: record logging shrinks the log volume dramatically, so
  // FORCE/TOC throughput is higher under record logging in both
  // environments (compare Figures 9 and 11).
  for (const auto& params :
       {ModelParams::HighUpdate(), ModelParams::HighRetrieval()}) {
    for (double c = 0.0; c <= 0.91; c += 0.3) {
      EXPECT_GT(EvalRecordForceToc(params, c, false).throughput,
                EvalPageForceToc(params, c, false).throughput)
          << "C=" << c;
    }
  }
}

TEST(FigureAnchorTest, StorageOverheadClaim) {
  // Conclusion: "The extra storage used is about (100/N)% of the size of
  // the database" — the twin scheme stores one parity page per group
  // beyond single-parity RAID.
  const double n = 10;
  const double extra_pages_per_group = 1.0;
  EXPECT_DOUBLE_EQ(100.0 * extra_pages_per_group / n, 10.0);
}

TEST(FigureAnchorTest, Figure13AtHigherCommunalityStillMonotone) {
  const auto series = Figure13Series(0.8, {5, 15, 25, 35, 45});
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].gain_percent, series[i - 1].gain_percent);
  }
}

TEST(ProbabilityTest, StealProbabilityGrowsWithConcurrency) {
  ModelParams p = ModelParams::HighUpdate();
  const double base = StealProbability(p, 0.5);
  p.P = 12;
  EXPECT_GT(StealProbability(p, 0.5), base);
}

TEST(ProbabilityTest, LogProbabilityGrowsWithGroupSize) {
  ModelParams p;
  p.S = 5000;
  p.N = 5;
  const double small_n = LogProbability(p, 50);
  p.N = 50;
  EXPECT_GT(LogProbability(p, 50), small_n);
}


// ---------------------------------------------------------------------------
// Reliability model.
// ---------------------------------------------------------------------------

TEST(ReliabilityTest, OrderingsAndOverheads) {
  ReliabilityParams p;
  // Any redundancy beats a bare disk by orders of magnitude.
  EXPECT_GT(MirroredPairMttdlHours(p), 100 * p.disk_mttf_hours);
  EXPECT_GT(Raid5GroupMttdlHours(p, 10), 10 * p.disk_mttf_hours);
  // Bigger groups are less reliable.
  EXPECT_GT(Raid5GroupMttdlHours(p, 4), Raid5GroupMttdlHours(p, 16));
  // The twin group matches RAID-5 (its extra disk's loss is survivable).
  EXPECT_DOUBLE_EQ(TwinGroupMttdlHours(p, 10), Raid5GroupMttdlHours(p, 10));
  // Faster repair -> more reliable.
  ReliabilityParams slow = p;
  slow.repair_hours = 96;
  EXPECT_GT(Raid5GroupMttdlHours(p, 10), Raid5GroupMttdlHours(slow, 10));
  // Overheads per the paper's discussion.
  EXPECT_DOUBLE_EQ(MirroringOverheadPercent(), 100.0);
  EXPECT_DOUBLE_EQ(Raid5OverheadPercent(10), 10.0);
  EXPECT_DOUBLE_EQ(TwinOverheadPercent(10), 20.0);
  // The rotated whole array is less reliable than one isolated group.
  EXPECT_LT(RotatedArrayMttdlHours(p, 12), TwinGroupMttdlHours(p, 10));
}

// Monte-Carlo validation of the RAID-5 MTTDL approximation: simulate
// exponential failures with repair windows and compare the measured mean
// time to a double failure against the closed form.
TEST(ReliabilityTest, Raid5FormulaMatchesMonteCarlo) {
  ReliabilityParams p;
  p.disk_mttf_hours = 1000;  // Shorter lifetimes keep the sim cheap.
  p.repair_hours = 10;
  const uint32_t n = 4;  // 5 disks.
  const double d = n + 1;
  rda::Random rng(2025);
  auto exponential = [&](double mean) {
    double u = rng.NextDouble();
    if (u <= 0) {
      u = 1e-12;
    }
    return -std::log(u) * mean;
  };
  const int trials = 4000;
  double total = 0;
  for (int t = 0; t < trials; ++t) {
    double time = 0;
    for (;;) {
      // Wait for the next first failure among d healthy disks.
      time += exponential(p.disk_mttf_hours / d);
      // Does a second of the remaining d-1 disks fail within the repair
      // window?
      const double second = exponential(p.disk_mttf_hours / (d - 1));
      if (second < p.repair_hours) {
        time += second;
        break;  // Data loss.
      }
    }
    total += time;
  }
  const double measured = total / trials;
  const double predicted = Raid5GroupMttdlHours(p, n);
  EXPECT_NEAR(measured, predicted, 0.08 * predicted);
}

}  // namespace
}  // namespace rda::model
