#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "obs/obs.h"
#include "parity/twin_parity_manager.h"
#include "storage/data_page_meta.h"

namespace rda {
namespace {

constexpr size_t kPageSize = 128;

class TwinParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DiskArray::Options options;
    options.data_pages_per_group = 4;
    options.parity_copies = 2;
    options.min_data_pages = 32;
    options.page_size = kPageSize;
    auto array = DiskArray::Create(options);
    ASSERT_TRUE(array.ok());
    array_ = std::move(array).value();
    parity_ = std::make_unique<TwinParityManager>(array_.get());
    ASSERT_TRUE(parity_->FormatArray().ok());
  }

  // Payload with embedded meta stamped for `txn`.
  std::vector<uint8_t> MakePayload(uint8_t fill, TxnId txn = kInvalidTxnId,
                                   PageId chain_prev = kInvalidPageId) {
    std::vector<uint8_t> payload(kPageSize, fill);
    DataPageMeta meta;
    meta.txn_id = txn;
    meta.chain_prev = chain_prev;
    StoreDataMeta(meta, &payload);
    return payload;
  }

  Status Propagate(PageId page, TxnId txn, PropagationKind kind,
                   const std::vector<uint8_t>& payload) {
    PageImage image(0);
    image.payload = payload;
    return parity_->Propagate(page, txn, kind, nullptr, image);
  }

  std::vector<uint8_t> ReadPayload(PageId page) {
    PageImage image;
    EXPECT_TRUE(array_->ReadData(page, &image).ok());
    return image.payload;
  }

  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<TwinParityManager> parity_;
};

TEST_F(TwinParityTest, FormatLeavesAllGroupsCleanAndConsistent) {
  EXPECT_EQ(parity_->directory().DirtyCount(), 0u);
  for (GroupId group = 0; group < array_->num_groups(); ++group) {
    auto ok = parity_->VerifyGroupParity(group);
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(*ok) << "group " << group;
  }
}

TEST_F(TwinParityTest, ClassifyFollowsFigure3) {
  // Clean group: unlogged-first.
  EXPECT_EQ(parity_->Classify(0, 1), PropagationKind::kUnloggedFirst);
  ASSERT_TRUE(Propagate(0, 1, PropagationKind::kUnloggedFirst,
                        MakePayload(0x11, 1))
                  .ok());
  // Same page, same txn: unlogged repeat.
  EXPECT_EQ(parity_->Classify(0, 1), PropagationKind::kUnloggedRepeat);
  // Same page, different txn: must log.
  EXPECT_EQ(parity_->Classify(0, 2), PropagationKind::kLoggedDirtyGroup);
  // Different page in the dirty group, same txn: must log.
  EXPECT_EQ(parity_->Classify(1, 1), PropagationKind::kLoggedDirtyGroup);
  // Page in another (clean) group: unlogged-first again.
  EXPECT_EQ(parity_->Classify(4, 1), PropagationKind::kUnloggedFirst);
  // No transaction: plain.
  EXPECT_EQ(parity_->Classify(0, kInvalidTxnId), PropagationKind::kPlain);
}

TEST_F(TwinParityTest, UnloggedWriteDirtiesGroupAndKeepsBothInvariants) {
  ASSERT_TRUE(Propagate(1, 7, PropagationKind::kUnloggedFirst,
                        MakePayload(0x22, 7))
                  .ok());
  const GroupState& state = parity_->directory().Get(0);
  EXPECT_TRUE(state.dirty);
  EXPECT_EQ(state.dirty_page, 1u);
  EXPECT_EQ(state.dirty_txn, 7u);
  // Working twin consistent with current data.
  auto ok = parity_->VerifyGroupParity(0);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(TwinParityTest, ParityUndoRestoresExactPreStealImage) {
  // Commit an initial value for page 2 via a plain write.
  const std::vector<uint8_t> before = MakePayload(0x33);
  ASSERT_TRUE(Propagate(2, kInvalidTxnId, PropagationKind::kPlain, before)
                  .ok());

  // Unlogged steal by txn 9.
  ASSERT_TRUE(Propagate(2, 9, PropagationKind::kUnloggedFirst,
                        MakePayload(0x44, 9))
                  .ok());
  EXPECT_EQ(ReadPayload(2)[kDataRegionOffset], 0x44);

  auto undo = parity_->UndoUnloggedUpdate(0, 9);
  ASSERT_TRUE(undo.ok());
  EXPECT_TRUE(undo->payload_restored);
  EXPECT_EQ(undo->page, 2u);
  EXPECT_EQ(undo->overwritten_meta.txn_id, 9u);
  EXPECT_EQ(ReadPayload(2), before);  // Byte-exact, embedded meta included.
  EXPECT_FALSE(parity_->directory().Get(0).dirty);
  auto ok = parity_->VerifyGroupParity(0);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(TwinParityTest, RepeatStealStillUndoesToOriginal) {
  const std::vector<uint8_t> original = ReadPayload(3);
  ASSERT_TRUE(Propagate(3, 5, PropagationKind::kUnloggedFirst,
                        MakePayload(0x55, 5))
                  .ok());
  ASSERT_TRUE(Propagate(3, 5, PropagationKind::kUnloggedRepeat,
                        MakePayload(0x66, 5))
                  .ok());
  ASSERT_TRUE(Propagate(3, 5, PropagationKind::kUnloggedRepeat,
                        MakePayload(0x77, 5))
                  .ok());
  auto undo = parity_->UndoUnloggedUpdate(0, 5);
  ASSERT_TRUE(undo.ok());
  EXPECT_EQ(ReadPayload(3), original);
}

TEST_F(TwinParityTest, CommitFinalizesWorkingTwin) {
  ASSERT_TRUE(Propagate(0, 3, PropagationKind::kUnloggedFirst,
                        MakePayload(0x88, 3))
                  .ok());
  const uint32_t working = parity_->directory().Get(0).working_twin;
  ASSERT_TRUE(parity_->FinalizeCommit(0, 3).ok());
  const GroupState& state = parity_->directory().Get(0);
  EXPECT_FALSE(state.dirty);
  EXPECT_EQ(state.valid_twin, working);
  PageImage twin;
  ASSERT_TRUE(array_->ReadParity(0, working, &twin).ok());
  EXPECT_EQ(twin.header.parity_state, ParityState::kCommitted);
  // Idempotent re-run (recovery path).
  EXPECT_TRUE(parity_->FinalizeCommit(0, 3).ok());
}

TEST_F(TwinParityTest, FinalizeRejectsWrongTransaction) {
  ASSERT_TRUE(Propagate(0, 3, PropagationKind::kUnloggedFirst,
                        MakePayload(0x88, 3))
                  .ok());
  EXPECT_TRUE(parity_->FinalizeCommit(0, 4).IsFailedPrecondition());
}

TEST_F(TwinParityTest, LoggedWriteToDirtyGroupPreservesUndoInvariant) {
  const std::vector<uint8_t> original1 = ReadPayload(1);
  // Txn 2 dirties the group via page 1.
  ASSERT_TRUE(Propagate(1, 2, PropagationKind::kUnloggedFirst,
                        MakePayload(0x11, 2))
                  .ok());
  // Txn 3 writes page 0 in the same group (logged steal; both twins XORed).
  ASSERT_TRUE(Propagate(0, 3, PropagationKind::kLoggedDirtyGroup,
                        MakePayload(0x99))
                  .ok());
  EXPECT_EQ(ReadPayload(0)[kDataRegionOffset], 0x99);
  // Undo of txn 2's page 1 must restore it exactly, and keep 0x99 intact.
  auto undo = parity_->UndoUnloggedUpdate(0, 2);
  ASSERT_TRUE(undo.ok());
  EXPECT_EQ(ReadPayload(1), original1);
  EXPECT_EQ(ReadPayload(0)[kDataRegionOffset], 0x99);
  auto ok = parity_->VerifyGroupParity(0);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(TwinParityTest, UnloggedPropagationValidatedAgainstRule) {
  ASSERT_TRUE(Propagate(0, 1, PropagationKind::kUnloggedFirst,
                        MakePayload(0x10, 1))
                  .ok());
  // A second unlogged-first into the same dirty group must be refused.
  EXPECT_TRUE(Propagate(1, 1, PropagationKind::kUnloggedFirst,
                        MakePayload(0x20, 1))
                  .IsFailedPrecondition());
  // Repeat kind for a different page must be refused too.
  EXPECT_TRUE(Propagate(1, 1, PropagationKind::kUnloggedRepeat,
                        MakePayload(0x20, 1))
                  .IsFailedPrecondition());
}

TEST_F(TwinParityTest, ApplyLoggedUndoRestoresAndMaintainsParity) {
  const std::vector<uint8_t> before = MakePayload(0x21);
  ASSERT_TRUE(Propagate(5, kInvalidTxnId, PropagationKind::kPlain, before)
                  .ok());
  ASSERT_TRUE(Propagate(5, kInvalidTxnId, PropagationKind::kPlain,
                        MakePayload(0x42))
                  .ok());
  ASSERT_TRUE(parity_->ApplyLoggedUndo(5, before).ok());
  EXPECT_EQ(ReadPayload(5), before);
  auto ok = parity_->VerifyGroupParity(array_->layout().GroupOf(5));
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(TwinParityTest, RebuildDirectoryAfterCrashFindsDirtyGroups) {
  ASSERT_TRUE(Propagate(2, 11, PropagationKind::kUnloggedFirst,
                        MakePayload(0x61, 11))
                  .ok());
  ASSERT_TRUE(Propagate(8, 12, PropagationKind::kUnloggedFirst,
                        MakePayload(0x62, 12))
                  .ok());
  ASSERT_TRUE(parity_->FinalizeCommit(array_->layout().GroupOf(8), 12).ok());

  parity_->LoseVolatileState();
  EXPECT_EQ(parity_->Classify(0, 1), PropagationKind::kPlain);  // Unusable.
  ASSERT_TRUE(parity_->RebuildDirectory().ok());

  const GroupState& dirty = parity_->directory().Get(0);
  EXPECT_TRUE(dirty.dirty);
  EXPECT_EQ(dirty.dirty_page, 2u);
  EXPECT_EQ(dirty.dirty_txn, 11u);
  const GroupState& clean = parity_->directory().Get(2);
  EXPECT_FALSE(clean.dirty);
  // The finalized group's valid twin must be the committed one with the
  // highest timestamp.
  PageImage twin;
  ASSERT_TRUE(array_->ReadParity(2, clean.valid_twin, &twin).ok());
  EXPECT_EQ(twin.header.parity_state, ParityState::kCommitted);
}

TEST_F(TwinParityTest, UndoAfterRebuildStillExact) {
  const std::vector<uint8_t> original = ReadPayload(6);
  ASSERT_TRUE(Propagate(6, 21, PropagationKind::kUnloggedFirst,
                        MakePayload(0x71, 21))
                  .ok());
  parity_->LoseVolatileState();
  ASSERT_TRUE(parity_->RebuildDirectory().ok());
  const GroupId group = array_->layout().GroupOf(6);
  auto undo = parity_->UndoUnloggedUpdate(group, 21);
  ASSERT_TRUE(undo.ok());
  EXPECT_EQ(ReadPayload(6), original);
}

TEST_F(TwinParityTest, UndoIsIdempotentAcrossInterruptedRecovery) {
  ASSERT_TRUE(Propagate(6, 21, PropagationKind::kUnloggedFirst,
                        MakePayload(0x71, 21))
                  .ok());
  const GroupId group = array_->layout().GroupOf(6);
  auto first = parity_->UndoUnloggedUpdate(group, 21);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->payload_restored);
  const std::vector<uint8_t> restored = ReadPayload(6);

  // Simulate a crash after the data restore but before the recovery epoch
  // finished: the directory is rebuilt and the undo re-runs. The working
  // twin was invalidated, so the group is clean and a second undo is
  // rejected as a precondition failure — and the data stays put.
  parity_->LoseVolatileState();
  ASSERT_TRUE(parity_->RebuildDirectory().ok());
  EXPECT_FALSE(parity_->directory().Get(group).dirty);
  EXPECT_TRUE(
      parity_->UndoUnloggedUpdate(group, 21).status().IsFailedPrecondition());
  EXPECT_EQ(ReadPayload(6), restored);
}

TEST_F(TwinParityTest, ScrubRecomputesCommittedParity) {
  ASSERT_TRUE(Propagate(9, kInvalidTxnId, PropagationKind::kPlain,
                        MakePayload(0x13))
                  .ok());
  const GroupId group = array_->layout().GroupOf(9);
  // Corrupt the valid twin behind the manager's back, then scrub.
  const GroupState& state = parity_->directory().Get(group);
  const PhysicalLocation loc =
      array_->layout().ParityLocation(group, state.valid_twin);
  PageImage bogus(kPageSize);
  bogus.payload[50] = 0xFF;
  bogus.header.parity_state = ParityState::kCommitted;
  bogus.header.timestamp = 1;
  ASSERT_TRUE(array_->disk(loc.disk)->Write(loc.slot, bogus).ok());
  auto broken = parity_->VerifyGroupParity(group);
  ASSERT_TRUE(broken.ok());
  EXPECT_FALSE(*broken);
  ASSERT_TRUE(parity_->ScrubGroup(group).ok());
  auto fixed = parity_->VerifyGroupParity(group);
  ASSERT_TRUE(fixed.ok());
  EXPECT_TRUE(*fixed);
}

TEST_F(TwinParityTest, ScrubRefusesDirtyGroup) {
  ASSERT_TRUE(Propagate(0, 2, PropagationKind::kUnloggedFirst,
                        MakePayload(0x31, 2))
                  .ok());
  EXPECT_TRUE(parity_->ScrubGroup(0).IsFailedPrecondition());
}

TEST_F(TwinParityTest, ReconstructDataPayloadMatchesDisk) {
  const std::vector<uint8_t> payload = MakePayload(0x47);
  ASSERT_TRUE(Propagate(10, kInvalidTxnId, PropagationKind::kPlain, payload)
                  .ok());
  auto rebuilt = parity_->ReconstructDataPayload(10);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*rebuilt, payload);
}

TEST_F(TwinParityTest, ReconstructWorksForDirtyGroups) {
  ASSERT_TRUE(Propagate(10, 4, PropagationKind::kUnloggedFirst,
                        MakePayload(0x58, 4))
                  .ok());
  auto rebuilt = parity_->ReconstructDataPayload(10);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ((*rebuilt)[kDataRegionOffset], 0x58);
}

TEST_F(TwinParityTest, StatsCountDecisions) {
  ASSERT_TRUE(Propagate(0, 1, PropagationKind::kUnloggedFirst,
                        MakePayload(0x01, 1))
                  .ok());
  ASSERT_TRUE(Propagate(0, 1, PropagationKind::kUnloggedRepeat,
                        MakePayload(0x02, 1))
                  .ok());
  ASSERT_TRUE(Propagate(1, 2, PropagationKind::kLoggedDirtyGroup,
                        MakePayload(0x03))
                  .ok());
  ASSERT_TRUE(Propagate(20, kInvalidTxnId, PropagationKind::kPlain,
                        MakePayload(0x04))
                  .ok());
  const ParityStats& stats = parity_->stats();
  EXPECT_EQ(stats.unlogged_first, 1u);
  EXPECT_EQ(stats.unlogged_repeat, 1u);
  EXPECT_EQ(stats.logged_dirty_group, 1u);
  EXPECT_EQ(stats.plain, 1u);
}

// Property sweep: random interleavings of plain writes, unlogged steals,
// logged writes, commits and aborts across all groups keep (a) the
// consistent twin equal to XOR(data) and (b) parity undo exact.
class TwinParityRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TwinParityRandomTest, InvariantsHoldUnderRandomOperations) {
  DiskArray::Options options;
  options.data_pages_per_group = 4;
  options.parity_copies = 2;
  options.min_data_pages = 24;
  options.page_size = 96;
  auto array_or = DiskArray::Create(options);
  ASSERT_TRUE(array_or.ok());
  DiskArray* array = array_or->get();
  TwinParityManager parity(array);
  ASSERT_TRUE(parity.FormatArray().ok());

  Random rng(GetParam());
  const uint32_t pages = array->num_data_pages();
  std::vector<std::vector<uint8_t>> committed(pages);
  std::vector<std::vector<uint8_t>> pre_steal(pages);
  for (PageId page = 0; page < pages; ++page) {
    PageImage image;
    ASSERT_TRUE(array->ReadData(page, &image).ok());
    committed[page] = image.payload;
  }
  TxnId next_txn = 100;

  for (int step = 0; step < 300; ++step) {
    const PageId page = static_cast<PageId>(rng.Uniform(pages));
    const GroupId group = array->layout().GroupOf(page);
    const GroupState& state = parity.directory().Get(group);

    std::vector<uint8_t> payload(96);
    rng.FillBytes(&payload);

    if (!state.dirty && rng.Bernoulli(0.5)) {
      // Unlogged steal by a fresh transaction.
      const TxnId txn = next_txn++;
      DataPageMeta meta;
      meta.txn_id = txn;
      StoreDataMeta(meta, &payload);
      pre_steal[page] = committed[page];
      PageImage image(0);
      image.payload = payload;
      ASSERT_TRUE(parity
                      .Propagate(page, txn, PropagationKind::kUnloggedFirst,
                                 nullptr, image)
                      .ok());
      if (rng.Bernoulli(0.5)) {
        ASSERT_TRUE(parity.FinalizeCommit(group, txn).ok());
        committed[page] = payload;
      } else {
        auto undo = parity.UndoUnloggedUpdate(group, txn);
        ASSERT_TRUE(undo.ok());
        PageImage check;
        ASSERT_TRUE(array->ReadData(page, &check).ok());
        ASSERT_EQ(check.payload, pre_steal[page]) << "undo not exact";
      }
    } else {
      // Plain committed write (auto-upgrades inside dirty groups).
      DataPageMeta meta;
      StoreDataMeta(meta, &payload);
      PageImage image(0);
      image.payload = payload;
      const PropagationKind kind = state.dirty && state.dirty_page == page
                                       ? PropagationKind::kUnloggedRepeat
                                       : PropagationKind::kPlain;
      if (kind == PropagationKind::kUnloggedRepeat) {
        continue;  // Avoid mutating another txn's covered page.
      }
      ASSERT_TRUE(
          parity.Propagate(page, kInvalidTxnId, kind, nullptr, image).ok());
      committed[page] = payload;
    }

    if (step % 25 == 0) {
      for (GroupId g = 0; g < array->num_groups(); ++g) {
        auto ok = parity.VerifyGroupParity(g);
        ASSERT_TRUE(ok.ok());
        ASSERT_TRUE(*ok) << "group " << g << " inconsistent at step " << step;
      }
    }
  }

  // Resolve leftover dirty groups by undoing them, then final full check.
  for (const GroupId group : parity.directory().AllDirtyGroups()) {
    const GroupState& state = parity.directory().Get(group);
    ASSERT_TRUE(parity.UndoUnloggedUpdate(group, state.dirty_txn).ok());
  }
  for (GroupId g = 0; g < array->num_groups(); ++g) {
    auto ok = parity.VerifyGroupParity(g);
    ASSERT_TRUE(ok.ok());
    ASSERT_TRUE(*ok);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwinParityRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));


TEST_F(TwinParityTest, WriteFullGroupInstallsConsistentParity) {
  std::vector<std::vector<uint8_t>> payloads;
  for (int i = 0; i < 4; ++i) {
    payloads.push_back(MakePayload(static_cast<uint8_t>(0x30 + i)));
  }
  ASSERT_TRUE(parity_->WriteFullGroup(2, payloads).ok());
  for (uint32_t i = 0; i < 4; ++i) {
    const PageId page = array_->layout().PageAt(2, i);
    EXPECT_EQ(ReadPayload(page)[kDataRegionOffset], 0x30 + i);
  }
  auto ok = parity_->VerifyGroupParity(2);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(TwinParityTest, WriteFullGroupValidation) {
  std::vector<std::vector<uint8_t>> too_few(3, MakePayload(0x01));
  EXPECT_TRUE(parity_->WriteFullGroup(0, too_few).IsInvalidArgument());
  std::vector<std::vector<uint8_t>> wrong_size(
      4, std::vector<uint8_t>(kPageSize / 2));
  EXPECT_TRUE(parity_->WriteFullGroup(0, wrong_size).IsInvalidArgument());
}

TEST_F(TwinParityTest, RebuildGroupMemberRestoresEachRole) {
  // Populate group 1, then exercise a data-page rebuild directly.
  ASSERT_TRUE(Propagate(4, kInvalidTxnId, PropagationKind::kPlain,
                        MakePayload(0x51))
                  .ok());
  const std::vector<uint8_t> golden = ReadPayload(4);
  const DiskId victim = array_->layout().DataLocation(4).disk;
  ASSERT_TRUE(array_->FailDisk(victim).ok());
  ASSERT_TRUE(array_->ReplaceDisk(victim).ok());
  // The replaced disk is zeroed: rebuild every group's member on it.
  for (GroupId g = 0; g < array_->num_groups(); ++g) {
    ASSERT_TRUE(parity_->RebuildGroupMember(g, victim).ok());
  }
  EXPECT_EQ(ReadPayload(4), golden);
}

TEST_F(TwinParityTest, ReconstructFailsWhenTwoMembersDown) {
  const DiskId d0 = array_->layout().DataLocation(0).disk;
  const DiskId d1 = array_->layout().DataLocation(1).disk;
  ASSERT_TRUE(array_->FailDisk(d0).ok());
  ASSERT_TRUE(array_->FailDisk(d1).ok());
  EXPECT_FALSE(parity_->ReconstructDataPayload(0).ok());
}

TEST_F(TwinParityTest, ClassifyRefusesUnloggedOnDegradedGroup) {
  const DiskId victim = array_->layout().DataLocation(0).disk;
  ASSERT_TRUE(array_->FailDisk(victim).ok());
  EXPECT_EQ(parity_->Classify(0, 5), PropagationKind::kPlain);
  // Pages on healthy disks in OTHER groups are unaffected... unless their
  // own group's members share the failed disk.
  PageId healthy = kInvalidPageId;
  for (PageId p = 0; p < array_->num_data_pages(); ++p) {
    const GroupId g = array_->layout().GroupOf(p);
    bool touched = array_->layout().DataLocation(p).disk == victim;
    for (uint32_t t = 0; t < 2; ++t) {
      touched |= array_->layout().ParityLocation(g, t).disk == victim;
    }
    if (!touched) {
      healthy = p;
      break;
    }
  }
  if (healthy != kInvalidPageId) {
    EXPECT_EQ(parity_->Classify(healthy, 5),
              PropagationKind::kUnloggedFirst);
  }
}

TEST_F(TwinParityTest, ReinitializeParityFromDataResetsEverything) {
  ASSERT_TRUE(Propagate(0, 9, PropagationKind::kUnloggedFirst,
                        MakePayload(0x61, 9))
                  .ok());
  EXPECT_EQ(parity_->directory().DirtyCount(), 1u);
  ASSERT_TRUE(parity_->ReinitializeParityFromData().ok());
  EXPECT_EQ(parity_->directory().DirtyCount(), 0u);
  for (GroupId g = 0; g < array_->num_groups(); ++g) {
    auto ok = parity_->VerifyGroupParity(g);
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(*ok);
  }
  // Note: the uncommitted content of page 0 is now committed at the parity
  // level — ReinitializeParityFromData is a catastrophic-restore tool, not
  // part of normal operation.
}

// The Figure 8 parity-twin state machine, asserted transition by transition
// over a commit -> steal -> abort -> re-steal script. A fresh group starts
// with twin 0 committed and twin 1 obsolete.
TEST_F(TwinParityTest, Figure8TwinStateMachineTracedExactly) {
  obs::ObsHub hub(obs::ObsOptions{});
  parity_->AttachObs(&hub);

  // Commit: txn 5 steals page 0 unlogged, then finalizes.
  ASSERT_TRUE(Propagate(0, 5, PropagationKind::kUnloggedFirst,
                        MakePayload(0x71, 5))
                  .ok());
  ASSERT_TRUE(parity_->FinalizeCommit(0, 5).ok());
  // Steal + abort: txn 6 steals page 1, then parity-undoes.
  ASSERT_TRUE(Propagate(1, 6, PropagationKind::kUnloggedFirst,
                        MakePayload(0x72, 6))
                  .ok());
  ASSERT_TRUE(parity_->UndoUnloggedUpdate(0, 6).ok());
  // Re-steal: txn 7 revives the invalidated twin as the new working twin.
  ASSERT_TRUE(Propagate(2, 7, PropagationKind::kUnloggedFirst,
                        MakePayload(0x73, 7))
                  .ok());

  struct Expected {
    uint32_t twin;
    ParityState from;
    ParityState to;
    TxnId txn;
  };
  const Expected expected[] = {
      // Commit path: the obsolete twin becomes the working twin, is
      // committed at EOT, and the old committed twin goes obsolete.
      {1, ParityState::kObsolete, ParityState::kWorking, 5},
      {1, ParityState::kWorking, ParityState::kCommitted, 5},
      {0, ParityState::kCommitted, ParityState::kObsolete, 5},
      // Steal by txn 6 reuses the now-obsolete twin 0...
      {0, ParityState::kObsolete, ParityState::kWorking, 6},
      // ...and the abort invalidates it (undo info consumed).
      {0, ParityState::kWorking, ParityState::kInvalid, 6},
      // An invalid twin is still a legal steal target.
      {0, ParityState::kInvalid, ParityState::kWorking, 7},
  };

  std::vector<obs::TraceEvent> twins;
  for (const obs::TraceEvent& event : hub.trace()->Events()) {
    if (event.kind == obs::EventKind::kTwinTransition) {
      twins.push_back(event);
    }
  }
  ASSERT_EQ(twins.size(), std::size(expected));
  for (size_t i = 0; i < twins.size(); ++i) {
    EXPECT_EQ(twins[i].group, 0u) << "event " << i;
    EXPECT_EQ(twins[i].detail, static_cast<int64_t>(expected[i].twin))
        << "event " << i;
    EXPECT_EQ(twins[i].from_state, static_cast<uint8_t>(expected[i].from))
        << "event " << i;
    EXPECT_EQ(twins[i].to_state, static_cast<uint8_t>(expected[i].to))
        << "event " << i;
    EXPECT_EQ(twins[i].txn, expected[i].txn) << "event " << i;
  }
}

}  // namespace
}  // namespace rda
