#include <gtest/gtest.h>

#include "core/database.h"

namespace rda {
namespace {

DatabaseOptions BaseOptions() {
  DatabaseOptions options;
  options.array.data_pages_per_group = 4;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 64;
  options.array.page_size = 128;
  options.buffer.capacity = 16;
  options.txn.force = false;  // notFORCE exercises REDO.
  options.txn.rda_undo = true;
  return options;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void Open(const DatabaseOptions& options = BaseOptions()) {
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  std::vector<uint8_t> UserBytes(uint8_t fill) {
    return std::vector<uint8_t>(db_->user_page_size(), fill);
  }

  uint8_t DiskByte(PageId page) {
    auto payload = db_->RawReadPage(page);
    EXPECT_TRUE(payload.ok());
    return (*payload)[kDataRegionOffset];
  }

  void Steal(PageId page) {
    Frame* frame = db_->txn_manager()->pool()->Lookup(page);
    ASSERT_NE(frame, nullptr);
    ASSERT_TRUE(db_->txn_manager()->pool()->PropagateFrame(frame).ok());
  }

  void ExpectParityConsistent() {
    auto ok = db_->VerifyAllParity();
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(*ok);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(CrashRecoveryTest, CommittedWorkIsRedone) {
  Open();
  auto txn = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*txn, 1, UserBytes(0xAA)).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  EXPECT_EQ(DiskByte(1), 0x00);  // notFORCE: still only in the buffer.

  db_->Crash();
  auto report = db_->Recover();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->winners.size(), 1u);
  EXPECT_GE(report->redo_applied, 1u);
  EXPECT_EQ(DiskByte(1), 0xAA);
  ExpectParityConsistent();
}

TEST_F(CrashRecoveryTest, BufferedLoserSimplyVanishes) {
  Open();
  auto txn = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*txn, 1, UserBytes(0xBB)).ok());
  db_->Crash();
  auto report = db_->Recover();
  ASSERT_TRUE(report.ok());
  // The transaction never propagated anything: its BOT record was still in
  // the volatile log buffer, so it leaves no trace at all — nothing to
  // undo.
  EXPECT_TRUE(report->losers.empty());
  EXPECT_EQ(report->parity_undos, 0u);
  EXPECT_EQ(DiskByte(1), 0x00);
  ExpectParityConsistent();
}

TEST_F(CrashRecoveryTest, StolenLoserUndoneFromParityAlone) {
  Open();
  auto txn = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*txn, 1, UserBytes(0xCC)).ok());
  Steal(1);
  EXPECT_EQ(DiskByte(1), 0xCC);

  db_->Crash();
  auto report = db_->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->losers.size(), 1u);
  EXPECT_EQ(report->parity_undos, 1u);
  EXPECT_EQ(report->logged_undos, 0u);
  EXPECT_EQ(DiskByte(1), 0x00);
  ExpectParityConsistent();
}

TEST_F(CrashRecoveryTest, LoggedLoserUndoneFromLog) {
  Open();
  auto txn = db_->Begin();
  // Two pages in the same group: the second steal is a logged one.
  ASSERT_TRUE(db_->WritePage(*txn, 0, UserBytes(0xD1)).ok());
  ASSERT_TRUE(db_->WritePage(*txn, 1, UserBytes(0xD2)).ok());
  Steal(0);
  Steal(1);
  db_->Crash();
  auto report = db_->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->parity_undos, 1u);
  EXPECT_EQ(report->logged_undos, 1u);
  EXPECT_EQ(DiskByte(0), 0x00);
  EXPECT_EQ(DiskByte(1), 0x00);
  ExpectParityConsistent();
}

TEST_F(CrashRecoveryTest, CrashBetweenCommitAndFinalizeRollsForward) {
  Open();
  auto txn = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*txn, 2, UserBytes(0xE1)).ok());
  Steal(2);
  // Write the commit record manually, crash BEFORE FinalizeCommit: the
  // group is still dirty but the transaction is a winner.
  LogRecord commit;
  commit.type = LogRecordType::kCommit;
  commit.txn = *txn;
  ASSERT_TRUE(db_->log()->Append(std::move(commit)).ok());
  ASSERT_TRUE(db_->log()->Flush().ok());
  EXPECT_TRUE(db_->parity()->directory().Get(0).dirty);

  db_->Crash();
  auto report = db_->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->groups_finalized, 1u);
  EXPECT_TRUE(report->losers.empty());
  EXPECT_EQ(DiskByte(2), 0xE1);  // Kept: the transaction committed.
  EXPECT_FALSE(db_->parity()->directory().Get(0).dirty);
  ExpectParityConsistent();
}

TEST_F(CrashRecoveryTest, WinnersAndLosersMixed) {
  Open();
  auto winner = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*winner, 0, UserBytes(0x10)).ok());
  ASSERT_TRUE(db_->Commit(*winner).ok());
  auto loser = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*loser, 4, UserBytes(0x20)).ok());
  Steal(4);
  auto loser2 = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*loser2, 8, UserBytes(0x30)).ok());

  db_->Crash();
  auto report = db_->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->winners.size(), 1u);
  // Only the loser that stole a page is visible after the crash; the
  // buffered-only one evaporated with the volatile log tail.
  EXPECT_EQ(report->losers.size(), 1u);
  EXPECT_EQ(DiskByte(0), 0x10);
  EXPECT_EQ(DiskByte(4), 0x00);
  EXPECT_EQ(DiskByte(8), 0x00);
  ExpectParityConsistent();
}

TEST_F(CrashRecoveryTest, CommittedThenOverwrittenByLoser) {
  // The subtle interleaving from DESIGN.md: a winner's committed-but-
  // unpropagated change is wiped from disk by the loser's parity undo and
  // must be REDOne on top.
  Open();
  auto winner = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*winner, 3, UserBytes(0x77)).ok());
  ASSERT_TRUE(db_->Commit(*winner).ok());  // notFORCE: not on disk.
  auto loser = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*loser, 3, UserBytes(0x88)).ok());
  Steal(3);  // Propagates the loser's version (which includes nothing of
             // the winner's bytes — full page write).
  EXPECT_EQ(DiskByte(3), 0x88);

  db_->Crash();
  auto report = db_->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(DiskByte(3), 0x77);  // Winner's version, via undo THEN redo.
  ExpectParityConsistent();
}

TEST_F(CrashRecoveryTest, RecoveryIsIdempotent) {
  Open();
  auto winner = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*winner, 0, UserBytes(0x10)).ok());
  ASSERT_TRUE(db_->Commit(*winner).ok());
  auto loser = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*loser, 4, UserBytes(0x20)).ok());
  Steal(4);
  db_->Crash();
  ASSERT_TRUE(db_->Recover().ok());

  // Crash again immediately after recovery, recover again.
  db_->Crash();
  auto second = db_->Recover();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->losers.empty());  // AbortComplete was logged.
  EXPECT_EQ(second->parity_undos, 0u);
  EXPECT_EQ(DiskByte(0), 0x10);
  EXPECT_EQ(DiskByte(4), 0x00);
  ExpectParityConsistent();
}

TEST_F(CrashRecoveryTest, ChainWalkAuditsUnloggedPages) {
  Open();
  auto loser = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*loser, 0, UserBytes(0x41)).ok());
  ASSERT_TRUE(db_->WritePage(*loser, 4, UserBytes(0x42)).ok());
  ASSERT_TRUE(db_->WritePage(*loser, 8, UserBytes(0x43)).ok());
  Steal(0);
  Steal(4);
  Steal(8);
  db_->Crash();
  auto report = db_->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->chain_pages_walked, 3u);
  EXPECT_EQ(report->parity_undos, 3u);
  ExpectParityConsistent();
}

TEST_F(CrashRecoveryTest, NewTransactionsResumeAfterRecovery) {
  Open();
  auto txn = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*txn, 0, UserBytes(0x10)).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  db_->Crash();
  ASSERT_TRUE(db_->Recover().ok());

  auto fresh = db_->Begin();
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(*fresh, *txn);  // Ids never reused.
  ASSERT_TRUE(db_->WritePage(*fresh, 1, UserBytes(0x99)).ok());
  ASSERT_TRUE(db_->Commit(*fresh).ok());
  db_->Crash();
  auto report = db_->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(DiskByte(1), 0x99);
  EXPECT_EQ(DiskByte(0), 0x10);
}

TEST_F(CrashRecoveryTest, ForceModeCrashNeedsNoRedo) {
  DatabaseOptions options = BaseOptions();
  options.txn.force = true;
  Open(options);
  auto txn = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*txn, 1, UserBytes(0x66)).ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  EXPECT_EQ(DiskByte(1), 0x66);  // FORCE put it on disk already.
  db_->Crash();
  auto report = db_->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->redo_applied, 0u);
  EXPECT_GE(report->redo_skipped, 1u);  // pageLSN said "already there".
  EXPECT_EQ(DiskByte(1), 0x66);
}

TEST_F(CrashRecoveryTest, CheckpointBoundsRedoAndSurvivesCrash) {
  DatabaseOptions options = BaseOptions();
  options.checkpoint_interval_updates = 4;
  Open(options);
  for (int i = 0; i < 6; ++i) {
    auto txn = db_->Begin();
    ASSERT_TRUE(
        db_->WritePage(*txn, static_cast<PageId>(i * 4),
                       UserBytes(static_cast<uint8_t>(0x50 + i)))
            .ok());
    ASSERT_TRUE(db_->Commit(*txn).ok());
  }
  EXPECT_GE(db_->checkpointer()->checkpoints_taken(), 1u);
  db_->Crash();
  auto report = db_->Recover();
  ASSERT_TRUE(report.ok());
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(DiskByte(static_cast<PageId>(i * 4)), 0x50 + i);
  }
  ExpectParityConsistent();
}

TEST_F(CrashRecoveryTest, AbortedTransactionNotReundone) {
  Open();
  auto setup = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*setup, 2, UserBytes(0x11)).ok());
  ASSERT_TRUE(db_->Commit(*setup).ok());
  auto aborted = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*aborted, 2, UserBytes(0x22)).ok());
  Steal(2);
  ASSERT_TRUE(db_->Abort(*aborted).ok());

  db_->Crash();
  auto report = db_->Recover();
  ASSERT_TRUE(report.ok());
  // The aborted transaction logged AbortComplete: recovery skips it.
  EXPECT_TRUE(report->losers.empty());
  EXPECT_EQ(DiskByte(2), 0x11);
  ExpectParityConsistent();
}


DatabaseOptions RecordOptions() {
  DatabaseOptions options = BaseOptions();
  options.txn.logging_mode = LoggingMode::kRecordLogging;
  options.txn.record_size = 16;
  return options;
}

TEST_F(CrashRecoveryTest, RecordModeSharedPageWinnerAndLoser) {
  Open(RecordOptions());
  auto winner = db_->Begin();
  auto loser = db_->Begin();
  ASSERT_TRUE(
      db_->WriteRecord(*winner, 1, 0, std::vector<uint8_t>(16, 0xA1)).ok());
  ASSERT_TRUE(
      db_->WriteRecord(*loser, 1, 1, std::vector<uint8_t>(16, 0xB1)).ok());
  Steal(1);  // Multi-modifier: logged for both.
  ASSERT_TRUE(db_->Commit(*winner).ok());

  db_->Crash();
  auto report = db_->Recover();
  ASSERT_TRUE(report.ok());
  auto payload = db_->RawReadPage(1);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ((*payload)[kDataRegionOffset], 0xA1);       // Winner's slot.
  EXPECT_EQ((*payload)[kDataRegionOffset + 16], 0x00);  // Loser undone.
  ExpectParityConsistent();
}

TEST_F(CrashRecoveryTest, RecordModeUnloggedLoserSlotUndone) {
  Open(RecordOptions());
  auto setup = db_->Begin();
  ASSERT_TRUE(
      db_->WriteRecord(*setup, 2, 0, std::vector<uint8_t>(16, 0x11)).ok());
  ASSERT_TRUE(db_->Commit(*setup).ok());
  ASSERT_TRUE(db_->Checkpoint().ok());

  auto loser = db_->Begin();
  ASSERT_TRUE(
      db_->WriteRecord(*loser, 2, 0, std::vector<uint8_t>(16, 0x99)).ok());
  Steal(2);  // Sole modifier: unlogged, parity-covered.
  db_->Crash();
  auto report = db_->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->parity_undos, 1u);
  auto payload = db_->RawReadPage(2);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ((*payload)[kDataRegionOffset], 0x11);
  ExpectParityConsistent();
}

TEST_F(CrashRecoveryTest, ManyCrashEpochsAccumulateCorrectly) {
  Open();
  uint8_t expected = 0;
  for (int epoch = 0; epoch < 5; ++epoch) {
    auto winner = db_->Begin();
    expected = static_cast<uint8_t>(0x10 + epoch);
    ASSERT_TRUE(db_->WritePage(*winner, 1, UserBytes(expected)).ok());
    ASSERT_TRUE(db_->Commit(*winner).ok());
    auto loser = db_->Begin();
    ASSERT_TRUE(db_->WritePage(*loser, 1, UserBytes(0xEE)).ok());
    Steal(1);
    db_->Crash();
    auto report = db_->Recover();
    ASSERT_TRUE(report.ok()) << "epoch " << epoch;
    ASSERT_EQ(DiskByte(1), expected) << "epoch " << epoch;
    ExpectParityConsistent();
  }
}

TEST_F(CrashRecoveryTest, RedoSkippedCountsForceProplagatedPages) {
  DatabaseOptions options = BaseOptions();
  options.txn.force = true;
  Open(options);
  for (int i = 0; i < 3; ++i) {
    auto txn = db_->Begin();
    ASSERT_TRUE(db_->WritePage(*txn, static_cast<PageId>(i * 4),
                               UserBytes(static_cast<uint8_t>(i + 1)))
                    .ok());
    ASSERT_TRUE(db_->Commit(*txn).ok());
  }
  db_->Crash();
  auto report = db_->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->redo_applied, 0u);
  EXPECT_EQ(report->redo_skipped, 3u);
}

TEST_F(CrashRecoveryTest, FlushedBotWithoutWorkIsCleanLoser) {
  Open();
  auto txn = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*txn, 1, UserBytes(0x44)).ok());
  ASSERT_TRUE(db_->log()->Flush().ok());  // BOT reaches stable storage.
  db_->Crash();
  auto report = db_->Recover();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->losers.size(), 1u);
  EXPECT_EQ(report->parity_undos, 0u);  // Nothing was propagated.
  EXPECT_EQ(DiskByte(1), 0x00);
  // Its AbortComplete is now logged: the next epoch forgets it.
  db_->Crash();
  auto second = db_->Recover();
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->losers.empty());
}

// Regression: after a restart, RebuildDirectory must seed the timestamp
// counter ABOVE every timestamp already stamped on stable twins. If the
// counter restarted low, the first post-restart unlogged update would get a
// twin timestamp not newer than the committed twin's, the WORKING/committed
// classification would pick the wrong image, and undo would restore stale
// data.
TEST_F(CrashRecoveryTest, RestartSeedsTimestampsAboveStableTwins) {
  Open();
  // Several committed generations inflate the pre-crash timestamps.
  for (const uint8_t fill : {0x11, 0x22, 0xAA}) {
    auto txn = db_->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(db_->WritePage(*txn, 1, UserBytes(fill)).ok());
    Steal(1);
    ASSERT_TRUE(db_->Commit(*txn).ok());
  }

  db_->Crash();
  ASSERT_TRUE(db_->Recover().ok());
  EXPECT_EQ(DiskByte(1), 0xAA);

  // Runtime undo after the restart: the fresh twin must be classified as
  // the working (newer) image so parity undo restores 0xAA, not vice versa.
  auto loser = db_->Begin();
  ASSERT_TRUE(loser.ok());
  ASSERT_TRUE(db_->WritePage(*loser, 1, UserBytes(0xBB)).ok());
  Steal(1);
  EXPECT_EQ(DiskByte(1), 0xBB);
  ASSERT_TRUE(db_->Abort(*loser).ok());
  EXPECT_EQ(DiskByte(1), 0xAA);
  ExpectParityConsistent();

  // Crash undo after the restart: same property through recovery.
  auto crash_loser = db_->Begin();
  ASSERT_TRUE(crash_loser.ok());
  ASSERT_TRUE(db_->WritePage(*crash_loser, 1, UserBytes(0xCC)).ok());
  Steal(1);
  EXPECT_EQ(DiskByte(1), 0xCC);
  db_->Crash();
  auto report = db_->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->parity_undos, 1u);
  EXPECT_EQ(DiskByte(1), 0xAA);
  ExpectParityConsistent();
}

}  // namespace
}  // namespace rda
