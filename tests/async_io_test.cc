// The asynchronous per-disk I/O engine (DESIGN.md section 16): journal
// semantics of the raw IoEngine (elevator order, last-writer-wins
// coalescing, shared completion futures, purge-on-failure, job lanes), the
// DiskArray integration (journal-hit reads, deferred transfer counters,
// width-0 pass-through), and end-to-end durability of an async Database
// across Crash()+Recover().
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/database.h"
#include "io/io_engine.h"
#include "storage/disk_array.h"

namespace rda {
namespace {

constexpr size_t kPageSize = 128;

PageImage MakeImage(uint8_t fill) {
  PageImage image(kPageSize);
  std::fill(image.payload.begin(), image.payload.end(), fill);
  return image;
}

io::IoEngineOptions ManualDrainOptions() {
  io::IoEngineOptions options;
  options.width = 1;
  // Watermark far above anything a test submits: workers never drain on
  // their own, so every physical write happens inside an explicit Flush()
  // on the calling thread — deterministic order, no races on captures.
  options.queue_watermark = 1u << 20;
  return options;
}

TEST(IoEngineTest, FlushDrainsInElevatorOrderPerDisk) {
  std::vector<std::pair<DiskId, SlotId>> order;
  io::IoEngine engine(2, ManualDrainOptions(),
                      [&order](DiskId disk, SlotId slot, const PageImage&) {
                        order.emplace_back(disk, slot);
                        return Status::Ok();
                      });
  engine.SubmitWrite(0, 7, MakeImage(1), false);
  engine.SubmitWrite(1, 4, MakeImage(2), false);
  engine.SubmitWrite(0, 2, MakeImage(3), false);
  engine.SubmitWrite(0, 5, MakeImage(4), false);
  engine.SubmitWrite(1, 1, MakeImage(5), false);
  EXPECT_EQ(engine.QueueDepth(), 5u);
  ASSERT_TRUE(engine.Flush().ok());
  // Slot-ascending per disk, disks in id order (Flush walks 0, then 1).
  const std::vector<std::pair<DiskId, SlotId>> expected = {
      {0, 2}, {0, 5}, {0, 7}, {1, 1}, {1, 4}};
  EXPECT_EQ(order, expected);
  EXPECT_EQ(engine.QueueDepth(), 0u);
  EXPECT_EQ(engine.stats().physical_writes, 5u);
}

TEST(IoEngineTest, RewritesOfQueuedSlotCoalesceLastWriterWins) {
  std::vector<uint8_t> landed;
  io::IoEngine engine(1, ManualDrainOptions(),
                      [&landed](DiskId, SlotId, const PageImage& image) {
                        landed.push_back(image.payload[0]);
                        return Status::Ok();
                      });
  auto first = engine.SubmitWrite(0, 3, MakeImage(10), false);
  auto second = engine.SubmitWrite(0, 3, MakeImage(20), false);
  auto third = engine.SubmitWrite(0, 3, MakeImage(30), false);
  ASSERT_TRUE(engine.Flush().ok());
  // One physical transfer carrying the last submission's bytes...
  ASSERT_EQ(landed.size(), 1u);
  EXPECT_EQ(landed[0], 30);
  // ...whose completion all three submitters share.
  EXPECT_TRUE(first.get().ok());
  EXPECT_TRUE(second.get().ok());
  EXPECT_TRUE(third.get().ok());
  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted_writes, 3u);
  EXPECT_EQ(stats.coalesced_writes, 2u);
  EXPECT_EQ(stats.physical_writes, 1u);
}

TEST(IoEngineTest, CoalescedParitySlotWritesCountAsBatchedRmw) {
  io::IoEngine engine(1, ManualDrainOptions(),
                      [](DiskId, SlotId, const PageImage&) {
                        return Status::Ok();
                      });
  engine.SubmitWrite(0, 9, MakeImage(1), /*is_parity=*/true);
  engine.SubmitWrite(0, 9, MakeImage(2), /*is_parity=*/true);
  engine.SubmitWrite(0, 9, MakeImage(3), /*is_parity=*/true);
  engine.SubmitWrite(0, 4, MakeImage(4), /*is_parity=*/false);
  engine.SubmitWrite(0, 4, MakeImage(5), /*is_parity=*/false);
  ASSERT_TRUE(engine.Flush().ok());
  const auto stats = engine.stats();
  // Each merged parity-slot submission is one read-modify-write the batch
  // absorbed; the data-slot merge is a plain coalesce.
  EXPECT_EQ(stats.batched_parity_rmw, 2u);
  EXPECT_EQ(stats.coalesced_writes, 3u);
  EXPECT_EQ(stats.physical_writes, 2u);
}

TEST(IoEngineTest, ReadFromQueueServesPendingImageWithoutTransfer) {
  uint64_t physical = 0;
  io::IoEngine engine(1, ManualDrainOptions(),
                      [&physical](DiskId, SlotId, const PageImage&) {
                        ++physical;
                        return Status::Ok();
                      });
  engine.SubmitWrite(0, 6, MakeImage(42), false);
  PageImage out;
  ASSERT_TRUE(engine.ReadFromQueue(0, 6, &out));
  EXPECT_EQ(out.payload[0], 42);
  EXPECT_FALSE(engine.ReadFromQueue(0, 7, &out));  // Nothing queued there.
  EXPECT_EQ(physical, 0u);  // The hit was a memory copy, not a transfer.
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_FALSE(engine.ReadFromQueue(0, 6, &out));  // Drained: on medium now.
}

TEST(IoEngineTest, PurgeDropsQueuedWritesAndCompletesTheirFutures) {
  uint64_t physical = 0;
  io::IoEngine engine(2, ManualDrainOptions(),
                      [&physical](DiskId, SlotId, const PageImage&) {
                        ++physical;
                        return Status::Ok();
                      });
  auto doomed = engine.SubmitWrite(0, 1, MakeImage(1), false);
  engine.SubmitWrite(1, 1, MakeImage(2), false);
  engine.PurgeDisk(0);
  // The dropped write's history is "landed, then the medium died": Ok.
  EXPECT_TRUE(doomed.get().ok());
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_EQ(physical, 1u);  // Only the surviving disk's write transferred.
  EXPECT_EQ(engine.stats().purged_writes, 1u);
}

TEST(IoEngineTest, JobLanesRunSubmittedClosures) {
  io::IoEngineOptions options;
  options.width = 2;
  options.queue_watermark = 1u << 20;
  io::IoEngine engine(2, options, [](DiskId, SlotId, const PageImage&) {
    return Status::Ok();
  });
  std::atomic<int> ran{0};
  auto a = engine.SubmitJob(0, [&ran] {
    ran.fetch_add(1);
    return Status::Ok();
  });
  auto b = engine.SubmitJob(1, [&ran] {
    ran.fetch_add(1);
    return Status::IoError("synthetic");
  });
  EXPECT_TRUE(a.get().ok());
  EXPECT_FALSE(b.get().ok());
  EXPECT_EQ(ran.load(), 2);
}

TEST(IoEngineTest, DestructorDrainsTheJournal) {
  uint64_t physical = 0;
  {
    io::IoEngine engine(1, ManualDrainOptions(),
                        [&physical](DiskId, SlotId, const PageImage&) {
                          ++physical;
                          return Status::Ok();
                        });
    engine.SubmitWrite(0, 1, MakeImage(1), false);
    engine.SubmitWrite(0, 2, MakeImage(2), false);
  }
  EXPECT_EQ(physical, 2u);  // The journal is non-volatile; nothing strands.
}

// --- DiskArray integration ---

DiskArray::Options ArrayOptions() {
  DiskArray::Options options;
  options.data_pages_per_group = 4;
  options.parity_copies = 2;
  options.min_data_pages = 32;
  options.page_size = kPageSize;
  return options;
}

IoPolicy AsyncPolicy() {
  IoPolicy policy;
  policy.width = 1;
  policy.queue_watermark = 1u << 20;  // Manual drains only (determinism).
  return policy;
}

TEST(DiskArrayAsyncTest, WidthZeroLeavesTheSynchronousPathEngineless) {
  auto array = DiskArray::Create(ArrayOptions());
  ASSERT_TRUE(array.ok());
  (*array)->SetIoPolicy(IoPolicy{});  // Default width 0.
  EXPECT_EQ((*array)->io_engine(), nullptr);
  ASSERT_TRUE((*array)->WriteData(0, MakeImage(9)).ok());
  EXPECT_EQ((*array)->counters().page_writes, 1u);  // Counted immediately.
}

TEST(DiskArrayAsyncTest, JournaledWriteDefersCountersUntilFlush) {
  auto array = DiskArray::Create(ArrayOptions());
  ASSERT_TRUE(array.ok());
  (*array)->SetIoPolicy(AsyncPolicy());
  ASSERT_NE((*array)->io_engine(), nullptr);

  ASSERT_TRUE((*array)->WriteData(3, MakeImage(7)).ok());
  // Durable (journaled) but not yet a device transfer:
  EXPECT_EQ((*array)->counters().page_writes, 0u);
  // ...and readable through the journal without a device read.
  PageImage out;
  ASSERT_TRUE((*array)->ReadData(3, &out).ok());
  EXPECT_EQ(out.payload[0], 7);
  EXPECT_EQ((*array)->counters().page_reads, 0u);

  ASSERT_TRUE((*array)->FlushIo().ok());
  EXPECT_EQ((*array)->counters().page_writes, 1u);
  // Post-drain reads come from the medium and count normally.
  ASSERT_TRUE((*array)->ReadData(3, &out).ok());
  EXPECT_EQ(out.payload[0], 7);
  EXPECT_EQ((*array)->counters().page_reads, 1u);
}

TEST(DiskArrayAsyncTest, RepeatedWritesToOnePageCoalesceIntoOneTransfer) {
  auto array = DiskArray::Create(ArrayOptions());
  ASSERT_TRUE(array.ok());
  (*array)->SetIoPolicy(AsyncPolicy());
  for (uint8_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE((*array)->WriteData(0, MakeImage(i)).ok());
  }
  ASSERT_TRUE((*array)->FlushIo().ok());
  EXPECT_EQ((*array)->counters().page_writes, 1u);
  PageImage out;
  ASSERT_TRUE((*array)->ReadData(0, &out).ok());
  EXPECT_EQ(out.payload[0], 5);  // Last writer won.
  EXPECT_EQ((*array)->io_engine()->stats().coalesced_writes, 4u);
}

TEST(DiskArrayAsyncTest, FailDiskPurgesItsQueueAndFlushStaysClean) {
  auto array = DiskArray::Create(ArrayOptions());
  ASSERT_TRUE(array.ok());
  (*array)->SetIoPolicy(AsyncPolicy());
  const PhysicalLocation loc = (*array)->layout().DataLocation(0);
  ASSERT_TRUE((*array)->WriteData(0, MakeImage(1)).ok());
  ASSERT_TRUE((*array)->FailDisk(loc.disk).ok());
  // The journaled write died with the medium; nothing sticky remains.
  ASSERT_TRUE((*array)->FlushIo().ok());
  EXPECT_EQ((*array)->io_engine()->stats().purged_writes, 1u);
  // Writes against the failed disk now surface the synchronous error.
  EXPECT_FALSE((*array)->WriteData(0, MakeImage(2)).ok());
}

TEST(DiskArrayAsyncTest, PersistentDrainFailureEscalatesInsteadOfLosingIt) {
  auto array = DiskArray::Create(ArrayOptions());
  ASSERT_TRUE(array.ok());
  (*array)->SetIoPolicy(AsyncPolicy());  // disk_error_budget = 0 (default).
  FaultConfig faults;
  faults.enabled = true;  // All probabilities zero: scripted faults only.
  (*array)->ArmFaultInjection(faults);
  const PhysicalLocation loc = (*array)->layout().DataLocation(0);
  // More scripted write failures than the retry policy has attempts: the
  // slot is persistently unwritable while the disk stays "live".
  (*array)->injector(loc.disk)->ScheduleTransientWrite(loc.slot, 16);

  // The submitter sees Ok — the journal is modeled durable.
  ASSERT_TRUE((*array)->WriteData(0, MakeImage(5)).ok());
  // The drain cannot land the write. It must NOT vanish silently: the disk
  // is escalated so redundancy machinery (reconstruction, rebuild) carries
  // the durability, and the flush itself reports clean.
  ASSERT_TRUE((*array)->FlushIo().ok());
  EXPECT_TRUE((*array)->DiskFailed(loc.disk));
  EXPECT_EQ((*array)->EscalatedDisks(), std::vector<DiskId>{loc.disk});
  EXPECT_EQ((*array)->policy_stats().escalations, 1u);
  // No sticky residue: later flushes (scrub/rebuild preludes) stay clean.
  EXPECT_TRUE((*array)->FlushIo().ok());
}

TEST(DiskArrayAsyncTest, SetIoPolicyWidthZeroStopsAndDrainsTheEngine) {
  auto array = DiskArray::Create(ArrayOptions());
  ASSERT_TRUE(array.ok());
  (*array)->SetIoPolicy(AsyncPolicy());
  ASSERT_TRUE((*array)->WriteData(1, MakeImage(3)).ok());
  IoPolicy sync;  // width 0
  (*array)->SetIoPolicy(sync);
  EXPECT_EQ((*array)->io_engine(), nullptr);
  // The stop drained the journal: the write reached the medium.
  EXPECT_EQ((*array)->counters().page_writes, 1u);
  PageImage out;
  ASSERT_TRUE((*array)->ReadData(1, &out).ok());
  EXPECT_EQ(out.payload[0], 3);
}

// --- Database end-to-end ---

DatabaseOptions AsyncDbOptions(bool force, bool rda) {
  DatabaseOptions options;
  options.array.data_pages_per_group = 4;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 32;
  options.array.page_size = kPageSize;
  options.buffer.capacity = 12;
  options.txn.force = force;
  options.txn.rda_undo = rda;
  if (!force) {
    options.checkpoint_interval_updates = 16;
  }
  options.io.width = 2;
  options.io.queue_watermark = 4;  // Small: exercise background drains too.
  return options;
}

TEST(DatabaseAsyncIoTest, CommittedWritesSurviveCrashWithAsyncEngine) {
  auto db = Database::Open(AsyncDbOptions(/*force=*/true, /*rda=*/true));
  ASSERT_TRUE(db.ok());
  std::vector<uint8_t> bytes((*db)->user_page_size());
  for (PageId page = 0; page < 8; ++page) {
    auto txn = (*db)->Begin();
    ASSERT_TRUE(txn.ok());
    std::fill(bytes.begin(), bytes.end(), static_cast<uint8_t>(page + 100));
    ASSERT_TRUE((*db)->WritePage(*txn, page, bytes).ok());
    ASSERT_TRUE((*db)->Commit(*txn).ok());
  }
  (*db)->Crash();
  ASSERT_TRUE((*db)->Recover().ok());
  for (PageId page = 0; page < 8; ++page) {
    auto payload = (*db)->RawReadPage(page);
    ASSERT_TRUE(payload.ok());
    EXPECT_EQ((*payload)[kDataRegionOffset], static_cast<uint8_t>(page + 100))
        << "page " << page;
  }
  auto parity_ok = (*db)->VerifyAllParity();
  ASSERT_TRUE(parity_ok.ok());
  EXPECT_TRUE(*parity_ok);
}

// The reviewer-found regression: a FORCE commit whose journaled data-page
// write later fails persistently on a still-live disk. The commit already
// reported durable, so the write must not be dropped — the drain escalates
// the disk and the committed bytes stay reachable through reconstruction,
// then a rebuild makes the array whole again.
TEST(DatabaseAsyncIoTest, CommitSurvivesPersistentDrainFailureViaRedundancy) {
  DatabaseOptions options = AsyncDbOptions(/*force=*/true, /*rda=*/true);
  options.io.queue_watermark = 1u << 20;  // Drain only at Crash()'s flush.
  options.fault.enabled = true;  // Zero probabilities: scripted faults only.
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  const PhysicalLocation loc = (*db)->array()->layout().DataLocation(0);
  (*db)->array()->injector(loc.disk)->ScheduleTransientWrite(loc.slot, 16);

  std::vector<uint8_t> bytes((*db)->user_page_size());
  for (PageId page = 0; page < 8; ++page) {
    auto txn = (*db)->Begin();
    ASSERT_TRUE(txn.ok());
    std::fill(bytes.begin(), bytes.end(), static_cast<uint8_t>(page + 40));
    ASSERT_TRUE((*db)->WritePage(*txn, page, bytes).ok());
    ASSERT_TRUE((*db)->Commit(*txn).ok());
  }
  (*db)->Crash();  // Drains the journal: page 0's write cannot land.
  auto recovered = (*db)->Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*db)->array()->EscalatedDisks(), std::vector<DiskId>{loc.disk});
  // Every committed page is still readable — page 0 through reconstruction.
  for (PageId page = 0; page < 8; ++page) {
    auto payload = (*db)->RawReadPage(page);
    ASSERT_TRUE(payload.ok());
    EXPECT_EQ((*payload)[kDataRegionOffset], static_cast<uint8_t>(page + 40))
        << "page " << page;
  }
  // The rebuild closes the loop: healthy array, consistent parity.
  auto repair = (*db)->RepairEscalations();
  ASSERT_TRUE(repair.ok());
  EXPECT_EQ(repair->repaired, 1u);
  auto parity_ok = (*db)->VerifyAllParity();
  ASSERT_TRUE(parity_ok.ok());
  EXPECT_TRUE(*parity_ok);
}

TEST(DatabaseAsyncIoTest, MediaRebuildRestoresAFailedDiskUnderAsyncIo) {
  auto db = Database::Open(AsyncDbOptions(/*force=*/true, /*rda=*/true));
  ASSERT_TRUE(db.ok());
  std::vector<uint8_t> bytes((*db)->user_page_size());
  for (PageId page = 0; page < 8; ++page) {
    auto txn = (*db)->Begin();
    ASSERT_TRUE(txn.ok());
    std::fill(bytes.begin(), bytes.end(), static_cast<uint8_t>(page + 1));
    ASSERT_TRUE((*db)->WritePage(*txn, page, bytes).ok());
    ASSERT_TRUE((*db)->Commit(*txn).ok());
  }
  ASSERT_TRUE((*db)->array()->FailDisk(2).ok());
  ASSERT_TRUE((*db)->RebuildDisk(2).ok());
  for (PageId page = 0; page < 8; ++page) {
    auto payload = (*db)->RawReadPage(page);
    ASSERT_TRUE(payload.ok());
    EXPECT_EQ((*payload)[kDataRegionOffset], static_cast<uint8_t>(page + 1));
  }
  auto parity_ok = (*db)->VerifyAllParity();
  ASSERT_TRUE(parity_ok.ok());
  EXPECT_TRUE(*parity_ok);
}

}  // namespace
}  // namespace rda
