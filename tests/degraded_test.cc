// Degraded-mode operation: the availability motivation of redundant arrays
// (paper Section 1) — the database keeps serving reads AND writes while a
// disk is down, and a later rebuild materializes everything. Also covers
// the full-stripe bulk load and crash-during-recovery fault injection.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/database.h"

namespace rda {
namespace {

DatabaseOptions BaseOptions() {
  DatabaseOptions options;
  options.array.data_pages_per_group = 4;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 48;
  options.array.page_size = 128;
  options.buffer.capacity = 12;
  options.txn.force = true;
  options.txn.rda_undo = true;
  return options;
}

class DegradedTest : public ::testing::Test {
 protected:
  void Open(const DatabaseOptions& options = BaseOptions()) {
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  Status WriteTxn(PageId page, uint8_t fill) {
    auto txn = db_->Begin();
    RDA_RETURN_IF_ERROR(txn.status());
    RDA_RETURN_IF_ERROR(db_->WritePage(
        *txn, page, std::vector<uint8_t>(db_->user_page_size(), fill)));
    return db_->Commit(*txn);
  }

  uint8_t DiskByte(PageId page) {
    auto payload = db_->RawReadPage(page);
    EXPECT_TRUE(payload.ok()) << payload.status().ToString();
    return (*payload)[kDataRegionOffset];
  }

  // Disk hosting `page`'s data.
  DiskId DataDiskOf(PageId page) {
    return db_->array()->layout().DataLocation(page).disk;
  }

  std::unique_ptr<Database> db_;
};

TEST_F(DegradedTest, CommittedWriteWithDataDiskDown) {
  Open();
  ASSERT_TRUE(WriteTxn(1, 0x11).ok());
  const DiskId victim = DataDiskOf(1);
  ASSERT_TRUE(db_->FailDisk(victim).ok());

  // The write succeeds in degraded mode (parity carries it) ...
  ASSERT_TRUE(WriteTxn(1, 0x22).ok());
  // ... degraded reads see the new content ...
  EXPECT_EQ(DiskByte(1), 0x22);
  // ... and the rebuild materializes it.
  ASSERT_TRUE(db_->RebuildDisk(victim).ok());
  EXPECT_EQ(DiskByte(1), 0x22);
  auto ok = db_->VerifyAllParity();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(DegradedTest, UnloggedStealRefusedWhileDegraded) {
  Open();
  const DiskId victim = DataDiskOf(1);
  ASSERT_TRUE(db_->FailDisk(victim).ok());
  // Classify falls back to plain, so the steal logs a before-image instead
  // of relying on undo coverage it cannot guarantee.
  auto txn = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*txn, 1,
                             std::vector<uint8_t>(db_->user_page_size(),
                                                  0x33))
                  .ok());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  EXPECT_EQ(db_->txn_manager()->stats().before_images_avoided, 0u);
  EXPECT_GE(db_->txn_manager()->stats().before_images_logged, 1u);
  EXPECT_EQ(DiskByte(1), 0x33);
  ASSERT_TRUE(db_->RebuildDisk(victim).ok());
  EXPECT_EQ(DiskByte(1), 0x33);
}

TEST_F(DegradedTest, AbortWithDataDiskDownUndoesInParitySpace) {
  Open();
  ASSERT_TRUE(WriteTxn(2, 0x11).ok());
  // Dirty the group while healthy, then lose the covered page's disk.
  auto txn = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*txn, 2,
                             std::vector<uint8_t>(db_->user_page_size(),
                                                  0x99))
                  .ok());
  Frame* frame = db_->txn_manager()->pool()->Lookup(2);
  ASSERT_TRUE(db_->txn_manager()->pool()->PropagateFrame(frame).ok());
  ASSERT_TRUE(db_->parity()->directory().Get(0).dirty);

  ASSERT_TRUE(db_->FailDisk(DataDiskOf(2)).ok());
  ASSERT_TRUE(db_->Abort(*txn).ok());
  // Degraded read must show the pre-transaction content.
  EXPECT_EQ(DiskByte(2), 0x11);
  ASSERT_TRUE(db_->RebuildDisk(DataDiskOf(2)).ok());
  EXPECT_EQ(DiskByte(2), 0x11);
  auto ok = db_->VerifyAllParity();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(DegradedTest, WritesWithParityDiskDownSurviveRebuild) {
  Open();
  // Fail the disk holding group 0's valid twin; committed writes continue
  // (parity on that twin goes stale) and the rebuild recomputes it.
  const GroupState& state = db_->parity()->directory().Get(0);
  const DiskId victim =
      db_->array()->layout().ParityLocation(0, state.valid_twin).disk;
  ASSERT_TRUE(db_->FailDisk(victim).ok());
  ASSERT_TRUE(WriteTxn(0, 0x44).ok());
  ASSERT_TRUE(WriteTxn(1, 0x45).ok());
  EXPECT_EQ(DiskByte(0), 0x44);
  ASSERT_TRUE(db_->RebuildDisk(victim).ok());
  EXPECT_EQ(DiskByte(0), 0x44);
  EXPECT_EQ(DiskByte(1), 0x45);
  auto ok = db_->VerifyAllParity();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(DegradedTest, MixedWorkloadAcrossFailureAndRebuild) {
  Open();
  Random rng(31);
  std::vector<uint8_t> expected(db_->num_pages(), 0);
  auto churn = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      const PageId page =
          static_cast<PageId>(rng.Uniform(db_->num_pages()));
      const uint8_t fill = static_cast<uint8_t>(rng.UniformRange(1, 250));
      ASSERT_TRUE(WriteTxn(page, fill).ok());
      expected[page] = fill;
    }
  };
  churn(30);
  ASSERT_TRUE(db_->FailDisk(2).ok());
  churn(30);  // Degraded operation.
  ASSERT_TRUE(db_->RebuildDisk(2).ok());
  churn(30);
  for (PageId page = 0; page < db_->num_pages(); ++page) {
    ASSERT_EQ(DiskByte(page), expected[page]) << "page " << page;
  }
  auto ok = db_->VerifyAllParity();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

// ---------------------------------------------------------------------------
// Full-stripe bulk load.
// ---------------------------------------------------------------------------

TEST_F(DegradedTest, BulkLoadRoundTripsAndKeepsParity) {
  Open();
  std::vector<std::vector<uint8_t>> pages(db_->num_pages());
  Random rng(7);
  for (PageId page = 0; page < db_->num_pages(); ++page) {
    pages[page].assign(db_->user_page_size(), 0);
    rng.FillBytes(&pages[page]);
  }
  ASSERT_TRUE(db_->BulkLoad(pages).ok());
  for (PageId page = 0; page < db_->num_pages(); ++page) {
    auto payload = db_->RawReadPage(page);
    ASSERT_TRUE(payload.ok());
    EXPECT_TRUE(std::equal(pages[page].begin(), pages[page].end(),
                           payload->begin() + kDataRegionOffset))
        << "page " << page;
  }
  auto ok = db_->VerifyAllParity();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(DegradedTest, BulkLoadCheaperThanTransactionalLoad) {
  Open();
  std::vector<std::vector<uint8_t>> pages(
      db_->num_pages(), std::vector<uint8_t>(db_->user_page_size(), 0x17));
  db_->array()->ResetCounters();
  ASSERT_TRUE(db_->BulkLoad(pages).ok());
  const uint64_t bulk = db_->array()->counters().total();

  Open();  // Fresh database for the transactional variant.
  db_->array()->ResetCounters();
  for (PageId page = 0; page < db_->num_pages(); ++page) {
    ASSERT_TRUE(WriteTxn(page, 0x17).ok());
  }
  const uint64_t transactional = db_->array()->counters().total();
  EXPECT_LT(bulk * 2, transactional)
      << "full-stripe load should be at least 2x cheaper";
}

TEST_F(DegradedTest, BulkLoadValidatesInput) {
  Open();
  EXPECT_TRUE(db_->BulkLoad(std::vector<std::vector<uint8_t>>(
                               db_->num_pages() + 1,
                               std::vector<uint8_t>(db_->user_page_size())))
                  .IsInvalidArgument());
  EXPECT_TRUE(
      db_->BulkLoad({std::vector<uint8_t>(3)}).IsInvalidArgument());
  auto txn = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*txn, 0,
                             std::vector<uint8_t>(db_->user_page_size(), 1))
                  .ok());
  EXPECT_TRUE(db_->BulkLoad({std::vector<uint8_t>(db_->user_page_size())})
                  .IsFailedPrecondition());
}

TEST_F(DegradedTest, FullGroupWriteRefusedForDirtyGroup) {
  Open();
  auto txn = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*txn, 0,
                             std::vector<uint8_t>(db_->user_page_size(),
                                                  0x55))
                  .ok());
  Frame* frame = db_->txn_manager()->pool()->Lookup(0);
  ASSERT_TRUE(db_->txn_manager()->pool()->PropagateFrame(frame).ok());
  std::vector<std::vector<uint8_t>> payloads(
      4, std::vector<uint8_t>(db_->array()->page_size(), 0));
  EXPECT_TRUE(
      db_->parity()->WriteFullGroup(0, payloads).IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Sector faults: self-healing reads, escalation, data-loss honesty
// (DESIGN.md section 10).
// ---------------------------------------------------------------------------

TEST_F(DegradedTest, HealedReadRepairsLatentSector) {
  DatabaseOptions options = BaseOptions();
  options.fault.enabled = true;
  Open(options);
  ASSERT_TRUE(WriteTxn(5, 0x5a).ok());

  const PhysicalLocation loc = db_->array()->layout().DataLocation(5);
  FaultInjector* injector = db_->array()->injector(loc.disk);
  ASSERT_NE(injector, nullptr);
  injector->InjectLatentSector(loc.slot);
  PageImage raw;
  EXPECT_TRUE(db_->array()->ReadData(5, &raw).IsIoError());

  // The healed read reconstructs from the group and repairs in place.
  EXPECT_EQ(DiskByte(5), 0x5a);
  EXPECT_EQ(db_->parity()->stats().latent_repairs, 1u);
  EXPECT_FALSE(injector->HasLatent(loc.slot));
  // The slot is genuinely healed: the raw path works again.
  ASSERT_TRUE(db_->array()->ReadData(5, &raw).ok());
  auto ok = db_->VerifyAllParity();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(DegradedTest, HealedReadRepairsChecksumCorruption) {
  DatabaseOptions options = BaseOptions();
  options.fault.enabled = true;
  Open(options);
  ASSERT_TRUE(WriteTxn(7, 0x7c).ok());

  const PhysicalLocation loc = db_->array()->layout().DataLocation(7);
  db_->array()->injector(loc.disk)->ScheduleBitFlip(loc.slot, /*offset=*/20,
                                                    /*mask=*/0x40);
  // The flip is silent; the checksum turns it into kCorruption, and the
  // healed read rebuilds the page from parity.
  EXPECT_EQ(DiskByte(7), 0x7c);
  EXPECT_EQ(db_->parity()->stats().corruption_repairs, 1u);
  EXPECT_EQ(db_->parity()->stats().latent_repairs, 0u);
  PageImage raw;
  ASSERT_TRUE(db_->array()->ReadData(7, &raw).ok());
}

TEST_F(DegradedTest, FaultedParityTwinHealedInsidePropagation) {
  DatabaseOptions options = BaseOptions();
  options.fault.enabled = true;
  Open(options);
  // Poison the clean group's valid twin, then write through it: the
  // propagation's parity read heals the twin (recomputed from data)
  // transparently and the transaction never notices.
  const GroupState& state = db_->parity()->directory().Get(0);
  const PhysicalLocation loc =
      db_->array()->layout().ParityLocation(0, state.valid_twin);
  db_->array()->injector(loc.disk)->InjectLatentSector(loc.slot);

  ASSERT_TRUE(WriteTxn(0, 0x66).ok());
  EXPECT_EQ(DiskByte(0), 0x66);
  EXPECT_EQ(db_->parity()->stats().latent_repairs, 1u);
  auto ok = db_->VerifyAllParity();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(DegradedTest, DirtyGroupValidTwinFaultIsDataLoss) {
  DatabaseOptions options = BaseOptions();
  options.fault.enabled = true;
  Open(options);
  ASSERT_TRUE(WriteTxn(2, 0x11).ok());
  // Dirty group 0 via an unlogged steal, then lose the valid twin: that
  // sector holds the only copy of the before-image parity.
  auto txn = db_->Begin();
  ASSERT_TRUE(db_->WritePage(*txn, 2,
                             std::vector<uint8_t>(db_->user_page_size(),
                                                  0x99))
                  .ok());
  Frame* frame = db_->txn_manager()->pool()->Lookup(2);
  ASSERT_TRUE(db_->txn_manager()->pool()->PropagateFrame(frame).ok());
  const GroupState state = db_->parity()->directory().Get(0);
  ASSERT_TRUE(state.dirty);

  const PhysicalLocation loc =
      db_->array()->layout().ParityLocation(0, state.valid_twin);
  db_->array()->injector(loc.disk)->InjectLatentSector(loc.slot);
  PageImage image;
  const Status status =
      db_->parity()->ReadParityHealed(0, state.valid_twin, &image);
  EXPECT_TRUE(status.IsDataLoss()) << status.ToString();
  // No repair was fabricated.
  EXPECT_EQ(db_->parity()->stats().latent_repairs, 0u);
  EXPECT_EQ(db_->parity()->stats().corruption_repairs, 0u);
}

TEST_F(DegradedTest, ErrorBudgetEscalationHealedByRepairEscalations) {
  DatabaseOptions options = BaseOptions();
  options.fault.enabled = true;
  options.io.disk_error_budget = 2;
  Open(options);
  // Two pages on the same disk, each with a latent sector: the second
  // repair-on-read exhausts the budget and escalates the disk.
  ASSERT_TRUE(WriteTxn(0, 0xd0).ok());
  const DiskId suspect = DataDiskOf(0);
  PageId second_page = 0;
  for (PageId page = 1; page < db_->num_pages(); ++page) {
    if (DataDiskOf(page) == suspect) {
      second_page = page;
      break;
    }
  }
  ASSERT_NE(second_page, 0u);
  ASSERT_TRUE(WriteTxn(second_page, 0xd1).ok());

  FaultInjector* injector = db_->array()->injector(suspect);
  injector->InjectLatentSector(db_->array()->layout().DataLocation(0).slot);
  injector->InjectLatentSector(
      db_->array()->layout().DataLocation(second_page).slot);

  EXPECT_EQ(DiskByte(0), 0xd0);  // First strike: healed, budget 1 left.
  EXPECT_FALSE(db_->array()->DiskFailed(suspect));
  // Second strike: the read still serves (degraded reconstruction), but the
  // disk is declared dying and force-failed.
  EXPECT_EQ(DiskByte(second_page), 0xd1);
  EXPECT_TRUE(db_->array()->DiskFailed(suspect));
  ASSERT_EQ(db_->array()->EscalatedDisks().size(), 1u);
  EXPECT_EQ(db_->array()->EscalatedDisks()[0], suspect);
  EXPECT_EQ(db_->array()->policy_stats().escalations, 1u);

  auto repaired = db_->RepairEscalations();
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_EQ(repaired->repaired, 1u);
  EXPECT_TRUE(repaired->unrepaired.empty());
  EXPECT_TRUE(repaired->first_error.ok());
  EXPECT_FALSE(db_->array()->DiskFailed(suspect));
  EXPECT_TRUE(db_->array()->EscalatedDisks().empty());
  EXPECT_EQ(DiskByte(0), 0xd0);
  EXPECT_EQ(DiskByte(second_page), 0xd1);
  auto ok = db_->VerifyAllParity();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(DegradedTest, SecondDiskFailureMidRebuildIsDataLoss) {
  DatabaseOptions options = BaseOptions();
  options.fault.enabled = true;
  options.io.disk_error_budget = 1;
  Open(options);
  for (PageId page = 0; page < 8; ++page) {
    ASSERT_TRUE(WriteTxn(page, static_cast<uint8_t>(0x50 + page)).ok());
  }
  // Fail the disk under group 0's valid twin; its rebuild recomputes parity
  // from healed data reads. A latent sector on page 0's disk then escalates
  // (budget 1) DURING the rebuild — a genuine second disk failure while the
  // first is still being reconstructed, which single parity cannot survive.
  const GroupState& state = db_->parity()->directory().Get(0);
  const DiskId victim =
      db_->array()->layout().ParityLocation(0, state.valid_twin).disk;
  const PhysicalLocation data_loc = db_->array()->layout().DataLocation(0);
  ASSERT_NE(victim, data_loc.disk);
  db_->array()->injector(data_loc.disk)->InjectLatentSector(data_loc.slot);

  ASSERT_TRUE(db_->FailDisk(victim).ok());
  auto report = db_->RebuildDisk(victim);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsDataLoss()) << report.status().ToString();
  EXPECT_TRUE(db_->array()->DiskFailed(data_loc.disk));
}

// ---------------------------------------------------------------------------
// Crash during recovery.
// ---------------------------------------------------------------------------

TEST_F(DegradedTest, CrashDuringRecoveryConvergesAtEveryFaultPoint) {
  for (uint64_t fault_at = 0; fault_at < 12; ++fault_at) {
    Open();  // Fresh database per fault point.
    // Workload: a winner needing redo, a loser needing parity undo, a
    // loser needing log undo, and a winner needing twin finalization.
    DatabaseOptions options = BaseOptions();
    options.txn.force = false;
    Open(options);
    auto winner = db_->Begin();
    ASSERT_TRUE(db_->WritePage(*winner, 0,
                               std::vector<uint8_t>(db_->user_page_size(),
                                                    0xA1))
                    .ok());
    ASSERT_TRUE(db_->Commit(*winner).ok());
    auto loser1 = db_->Begin();
    ASSERT_TRUE(db_->WritePage(*loser1, 4,
                               std::vector<uint8_t>(db_->user_page_size(),
                                                    0xB1))
                    .ok());
    Frame* frame = db_->txn_manager()->pool()->Lookup(4);
    ASSERT_TRUE(db_->txn_manager()->pool()->PropagateFrame(frame).ok());
    auto loser2 = db_->Begin();
    ASSERT_TRUE(db_->WritePage(*loser2, 8,
                               std::vector<uint8_t>(db_->user_page_size(),
                                                    0xC1))
                    .ok());
    ASSERT_TRUE(db_->WritePage(*loser2, 9,
                               std::vector<uint8_t>(db_->user_page_size(),
                                                    0xC2))
                    .ok());
    for (const PageId page : {8u, 9u}) {
      Frame* f = db_->txn_manager()->pool()->Lookup(page);
      ASSERT_TRUE(db_->txn_manager()->pool()->PropagateFrame(f).ok());
    }

    db_->Crash();
    auto faulty = db_->RecoverWithInjectedFault(fault_at);
    if (!faulty.ok()) {
      EXPECT_TRUE(faulty.status().IsAborted());
      // The "re-crash": volatile state gone again, then a clean recovery.
      db_->Crash();
      ASSERT_TRUE(db_->Recover().ok()) << "fault point " << fault_at;
    }
    EXPECT_EQ(DiskByte(0), 0xA1) << "fault point " << fault_at;
    EXPECT_EQ(DiskByte(4), 0x00) << "fault point " << fault_at;
    EXPECT_EQ(DiskByte(8), 0x00) << "fault point " << fault_at;
    EXPECT_EQ(DiskByte(9), 0x00) << "fault point " << fault_at;
    auto ok = db_->VerifyAllParity();
    ASSERT_TRUE(ok.ok());
    ASSERT_TRUE(*ok) << "fault point " << fault_at;
  }
}

}  // namespace
}  // namespace rda
