// End-to-end property tests: a randomized client drives the Database while
// an oracle tracks what the committed state must be; crashes, aborts,
// checkpoints and disk failures are injected at random points. After every
// recovery the on-disk committed state must equal the oracle and all parity
// groups must be consistent.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>

#include "common/random.h"
#include "core/database.h"

namespace rda {
namespace {

struct PropertyCase {
  uint64_t seed;
  LoggingMode mode;
  bool force;
  bool rda;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  std::string name = "Seed" + std::to_string(info.param.seed);
  name += info.param.mode == LoggingMode::kPageLogging ? "Page" : "Record";
  name += info.param.force ? "Force" : "NoForce";
  name += info.param.rda ? "Rda" : "NoRda";
  return name;
}

class RecoveryPropertyTest : public ::testing::TestWithParam<PropertyCase> {
 protected:
  static constexpr uint32_t kPages = 48;
  static constexpr size_t kRecordSize = 16;

  void SetUp() override {
    DatabaseOptions options;
    options.array.data_pages_per_group = 4;
    options.array.parity_copies = 2;
    options.array.min_data_pages = kPages;
    options.array.page_size = 128;
    options.buffer.capacity = 10;
    options.txn.logging_mode = GetParam().mode;
    options.txn.force = GetParam().force;
    options.txn.rda_undo = GetParam().rda;
    options.txn.record_size = kRecordSize;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    rng_ = std::make_unique<Random>(GetParam().seed);
  }

  bool record_mode() const {
    return GetParam().mode == LoggingMode::kRecordLogging;
  }

  // Oracle key: page (page mode) or page*1000+slot (record mode).
  using Key = uint64_t;
  Key MakeKey(PageId page, RecordSlot slot) {
    return static_cast<uint64_t>(page) * 1000 + slot;
  }

  Status Write(TxnId txn, PageId page, RecordSlot slot, uint8_t fill) {
    if (record_mode()) {
      return db_->WriteRecord(txn, page, slot,
                              std::vector<uint8_t>(kRecordSize, fill));
    }
    return db_->WritePage(
        txn, page, std::vector<uint8_t>(db_->user_page_size(), fill));
  }

  uint8_t ReadDurable(PageId page, RecordSlot slot) {
    auto payload = db_->RawReadPage(page);
    EXPECT_TRUE(payload.ok());
    const size_t offset =
        kDataRegionOffset + (record_mode() ? slot * kRecordSize : 0);
    return (*payload)[offset];
  }

  void VerifyOracle(const std::map<Key, uint8_t>& oracle) {
    for (const auto& [key, fill] : oracle) {
      const PageId page = static_cast<PageId>(key / 1000);
      const RecordSlot slot = static_cast<RecordSlot>(key % 1000);
      ASSERT_EQ(ReadDurable(page, slot), fill)
          << "page " << page << " slot " << slot;
    }
    auto ok = db_->VerifyAllParity();
    ASSERT_TRUE(ok.ok());
    ASSERT_TRUE(*ok);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Random> rng_;
};

TEST_P(RecoveryPropertyTest, CommittedStateSurvivesEverything) {
  std::map<Key, uint8_t> oracle;       // Durable truth.
  struct Pending {
    TxnId id;
    std::map<Key, uint8_t> writes;
  };
  std::vector<Pending> active;

  const uint32_t slots = record_mode() ? 5 : 1;
  uint8_t next_fill = 1;

  for (int step = 0; step < 500; ++step) {
    const double dice = rng_->NextDouble();
    if (dice < 0.25 && active.size() < 3) {
      auto txn = db_->Begin();
      ASSERT_TRUE(txn.ok());
      active.push_back(Pending{*txn, {}});
    } else if (dice < 0.70 && !active.empty()) {
      Pending& txn = active[rng_->Uniform(active.size())];
      const PageId page = static_cast<PageId>(rng_->Uniform(kPages));
      const RecordSlot slot =
          static_cast<RecordSlot>(rng_->Uniform(slots));
      const uint8_t fill = next_fill;
      const Status status = Write(txn.id, page, slot, fill);
      if (status.ok()) {
        next_fill = static_cast<uint8_t>(next_fill % 250 + 1);
        txn.writes[MakeKey(page, slot)] = fill;
      } else {
        ASSERT_TRUE(status.IsBusy()) << status.ToString();
      }
    } else if (dice < 0.82 && !active.empty()) {
      const size_t index = rng_->Uniform(active.size());
      const bool commit = rng_->Bernoulli(0.7);
      if (commit) {
        ASSERT_TRUE(db_->Commit(active[index].id).ok());
        for (const auto& [key, fill] : active[index].writes) {
          oracle[key] = fill;
        }
      } else {
        ASSERT_TRUE(db_->Abort(active[index].id).ok());
      }
      active.erase(active.begin() + index);
    } else if (dice < 0.87) {
      // Force a random dirty frame to disk (steal pressure).
      auto dirty = db_->txn_manager()->pool()->DirtyPages();
      if (!dirty.empty()) {
        Frame* frame = db_->txn_manager()->pool()->Lookup(
            dirty[rng_->Uniform(dirty.size())]);
        if (frame != nullptr) {
          ASSERT_TRUE(
              db_->txn_manager()->pool()->PropagateFrame(frame).ok());
        }
      }
    } else if (dice < 0.90 && !GetParam().force) {
      ASSERT_TRUE(db_->Checkpoint().ok());
    } else if (dice < 0.93) {
      // CRASH. All in-flight transactions become losers.
      db_->Crash();
      auto report = db_->Recover();
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      active.clear();
      VerifyOracle(oracle);
    } else if (dice < 0.945) {
      // Media failure WHILE transactions are in flight. If the lost disk
      // held the old twin of a dirty group, the affected transactions lose
      // undo coverage: Abort must refuse with kDataLoss and Commit is the
      // only legal outcome.
      const DiskId victim =
          static_cast<DiskId>(rng_->Uniform(db_->array()->num_disks()));
      ASSERT_TRUE(db_->FailDisk(victim).ok());
      auto report = db_->RebuildDisk(victim);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      for (const TxnId poisoned : report->undo_coverage_lost) {
        auto it = std::find_if(active.begin(), active.end(),
                               [poisoned](const Pending& txn) {
                                 return txn.id == poisoned;
                               });
        ASSERT_NE(it, active.end());
        EXPECT_TRUE(db_->Abort(poisoned).IsDataLoss());
        ASSERT_TRUE(db_->Commit(poisoned).ok());
        for (const auto& [key, fill] : it->writes) {
          oracle[key] = fill;
        }
        active.erase(it);
      }
    } else if (dice < 0.96 && active.empty()) {
      // Media failure + rebuild (only between transactions so undo
      // coverage cannot be lost and the oracle stays exact). Propagate
      // committed buffer content first: the oracle check below reads the
      // durable state.
      ASSERT_TRUE(db_->Checkpoint().ok());
      const DiskId victim =
          static_cast<DiskId>(rng_->Uniform(db_->array()->num_disks()));
      ASSERT_TRUE(db_->FailDisk(victim).ok());
      auto report = db_->RebuildDisk(victim);
      ASSERT_TRUE(report.ok());
      ASSERT_TRUE(report->undo_coverage_lost.empty());
      VerifyOracle(oracle);
    }
  }

  // Wind down: commit or abort the stragglers, then final verification.
  for (Pending& txn : active) {
    if (rng_->Bernoulli(0.5)) {
      ASSERT_TRUE(db_->Commit(txn.id).ok());
      for (const auto& [key, fill] : txn.writes) {
        oracle[key] = fill;
      }
    } else {
      ASSERT_TRUE(db_->Abort(txn.id).ok());
    }
  }
  db_->Crash();
  ASSERT_TRUE(db_->Recover().ok());
  VerifyOracle(oracle);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecoveryPropertyTest,
    ::testing::Values(
        PropertyCase{1, LoggingMode::kPageLogging, true, true},
        PropertyCase{2, LoggingMode::kPageLogging, true, false},
        PropertyCase{3, LoggingMode::kPageLogging, false, true},
        PropertyCase{4, LoggingMode::kPageLogging, false, false},
        PropertyCase{5, LoggingMode::kRecordLogging, true, true},
        PropertyCase{6, LoggingMode::kRecordLogging, false, true},
        PropertyCase{7, LoggingMode::kRecordLogging, false, false},
        PropertyCase{8, LoggingMode::kPageLogging, true, true},
        PropertyCase{9, LoggingMode::kPageLogging, false, true},
        PropertyCase{10, LoggingMode::kRecordLogging, false, true}),
    CaseName);

}  // namespace
}  // namespace rda
