#include <gtest/gtest.h>

#include "lock/lock_manager.h"

namespace rda {
namespace {

TEST(LockKeyTest, EncodingDistinguishesResources) {
  EXPECT_NE(LockKey::Page(1).Encoded(), LockKey::Page(2).Encoded());
  EXPECT_NE(LockKey::Page(1).Encoded(), LockKey::Record(1, 0).Encoded());
  EXPECT_NE(LockKey::Record(1, 0).Encoded(), LockKey::Record(1, 1).Encoded());
}

TEST(LockManagerTest, SharedLocksCompatible) {
  LockManager locks;
  EXPECT_TRUE(locks.Acquire(1, LockKey::Page(5), LockMode::kShared).ok());
  EXPECT_TRUE(locks.Acquire(2, LockKey::Page(5), LockMode::kShared).ok());
  EXPECT_TRUE(locks.Holds(1, LockKey::Page(5), LockMode::kShared));
  EXPECT_TRUE(locks.Holds(2, LockKey::Page(5), LockMode::kShared));
}

TEST(LockManagerTest, ExclusiveConflicts) {
  LockManager locks;
  EXPECT_TRUE(locks.Acquire(1, LockKey::Page(5), LockMode::kExclusive).ok());
  EXPECT_TRUE(
      locks.Acquire(2, LockKey::Page(5), LockMode::kShared).IsBusy());
  EXPECT_TRUE(
      locks.Acquire(2, LockKey::Page(5), LockMode::kExclusive).IsBusy());
}

TEST(LockManagerTest, ReacquireIsIdempotent) {
  LockManager locks;
  EXPECT_TRUE(locks.Acquire(1, LockKey::Page(5), LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.Acquire(1, LockKey::Page(5), LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.Acquire(1, LockKey::Page(5), LockMode::kShared).ok());
}

TEST(LockManagerTest, UpgradeWhenSoleHolder) {
  LockManager locks;
  EXPECT_TRUE(locks.Acquire(1, LockKey::Page(5), LockMode::kShared).ok());
  EXPECT_TRUE(locks.Acquire(1, LockKey::Page(5), LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.Holds(1, LockKey::Page(5), LockMode::kExclusive));
}

TEST(LockManagerTest, UpgradeBlockedByOtherReaders) {
  LockManager locks;
  EXPECT_TRUE(locks.Acquire(1, LockKey::Page(5), LockMode::kShared).ok());
  EXPECT_TRUE(locks.Acquire(2, LockKey::Page(5), LockMode::kShared).ok());
  EXPECT_TRUE(
      locks.Acquire(1, LockKey::Page(5), LockMode::kExclusive).IsBusy());
  // Still holds the shared lock.
  EXPECT_TRUE(locks.Holds(1, LockKey::Page(5), LockMode::kShared));
  EXPECT_FALSE(locks.Holds(1, LockKey::Page(5), LockMode::kExclusive));
}

TEST(LockManagerTest, ReleaseAllFreesResources) {
  LockManager locks;
  EXPECT_TRUE(locks.Acquire(1, LockKey::Page(1), LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.Acquire(1, LockKey::Page(2), LockMode::kShared).ok());
  EXPECT_EQ(locks.HeldCount(1), 2u);
  locks.ReleaseAll(1);
  EXPECT_EQ(locks.HeldCount(1), 0u);
  EXPECT_EQ(locks.LockedResourceCount(), 0u);
  EXPECT_TRUE(locks.Acquire(2, LockKey::Page(1), LockMode::kExclusive).ok());
}

TEST(LockManagerTest, RecordLocksIndependentOfEachOther) {
  LockManager locks;
  EXPECT_TRUE(
      locks.Acquire(1, LockKey::Record(9, 0), LockMode::kExclusive).ok());
  EXPECT_TRUE(
      locks.Acquire(2, LockKey::Record(9, 1), LockMode::kExclusive).ok());
  EXPECT_TRUE(
      locks.Acquire(2, LockKey::Record(9, 0), LockMode::kShared).IsBusy());
}

TEST(LockManagerTest, DeadlockCycleDetected) {
  LockManager locks;
  EXPECT_TRUE(locks.Acquire(1, LockKey::Page(1), LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.Acquire(2, LockKey::Page(2), LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.Acquire(1, LockKey::Page(2), LockMode::kExclusive)
                  .IsBusy());  // 1 waits on 2.
  EXPECT_FALSE(locks.WouldDeadlock(1));
  EXPECT_TRUE(locks.Acquire(2, LockKey::Page(1), LockMode::kExclusive)
                  .IsBusy());  // 2 waits on 1: cycle.
  EXPECT_TRUE(locks.WouldDeadlock(1));
  EXPECT_TRUE(locks.WouldDeadlock(2));
}

TEST(LockManagerTest, ThreeWayDeadlockDetected) {
  LockManager locks;
  for (TxnId t = 1; t <= 3; ++t) {
    EXPECT_TRUE(
        locks.Acquire(t, LockKey::Page(static_cast<PageId>(t)),
                      LockMode::kExclusive)
            .ok());
  }
  EXPECT_TRUE(locks.Acquire(1, LockKey::Page(2), LockMode::kExclusive)
                  .IsBusy());
  EXPECT_TRUE(locks.Acquire(2, LockKey::Page(3), LockMode::kExclusive)
                  .IsBusy());
  EXPECT_FALSE(locks.WouldDeadlock(2));
  EXPECT_TRUE(locks.Acquire(3, LockKey::Page(1), LockMode::kExclusive)
                  .IsBusy());
  EXPECT_TRUE(locks.WouldDeadlock(1));
  EXPECT_TRUE(locks.WouldDeadlock(3));
}

TEST(LockManagerTest, AbortBreaksDeadlock) {
  LockManager locks;
  EXPECT_TRUE(locks.Acquire(1, LockKey::Page(1), LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.Acquire(2, LockKey::Page(2), LockMode::kExclusive).ok());
  EXPECT_TRUE(
      locks.Acquire(1, LockKey::Page(2), LockMode::kExclusive).IsBusy());
  EXPECT_TRUE(
      locks.Acquire(2, LockKey::Page(1), LockMode::kExclusive).IsBusy());
  locks.ReleaseAll(2);  // Victim aborts.
  EXPECT_FALSE(locks.WouldDeadlock(1));
  EXPECT_TRUE(locks.Acquire(1, LockKey::Page(2), LockMode::kExclusive).ok());
}

TEST(LockManagerTest, GrantClearsWaitEdges) {
  LockManager locks;
  EXPECT_TRUE(locks.Acquire(1, LockKey::Page(1), LockMode::kExclusive).ok());
  EXPECT_TRUE(
      locks.Acquire(2, LockKey::Page(1), LockMode::kExclusive).IsBusy());
  locks.ReleaseAll(1);
  EXPECT_TRUE(locks.Acquire(2, LockKey::Page(1), LockMode::kExclusive).ok());
  EXPECT_FALSE(locks.WouldDeadlock(2));
}

TEST(LockManagerTest, CancelWaitsForgetsEdges) {
  LockManager locks;
  EXPECT_TRUE(locks.Acquire(1, LockKey::Page(1), LockMode::kExclusive).ok());
  EXPECT_TRUE(
      locks.Acquire(2, LockKey::Page(1), LockMode::kExclusive).IsBusy());
  locks.CancelWaits(2);
  EXPECT_TRUE(locks.Acquire(2, LockKey::Page(5), LockMode::kExclusive).ok());
  EXPECT_FALSE(locks.WouldDeadlock(2));
}

TEST(LockManagerTest, ClearDropsEverything) {
  LockManager locks;
  EXPECT_TRUE(locks.Acquire(1, LockKey::Page(1), LockMode::kExclusive).ok());
  EXPECT_TRUE(
      locks.Acquire(2, LockKey::Page(1), LockMode::kExclusive).IsBusy());
  locks.Clear();
  EXPECT_EQ(locks.LockedResourceCount(), 0u);
  EXPECT_TRUE(locks.Acquire(2, LockKey::Page(1), LockMode::kExclusive).ok());
}

}  // namespace
}  // namespace rda
