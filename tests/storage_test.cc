#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "common/random.h"
#include "common/xor_util.h"
#include "storage/data_page_meta.h"
#include "storage/data_striping_layout.h"
#include "storage/disk_array.h"
#include "storage/fault_injector.h"
#include "storage/io_policy.h"
#include "storage/parity_striping_layout.h"
#include "storage/scratch_pool.h"

namespace rda {
namespace {

TEST(DiskTest, ReadBackWhatWasWritten) {
  Disk disk(0, 8, 64);
  PageImage image(64);
  image.payload[5] = 0xab;
  image.header.timestamp = 42;
  ASSERT_TRUE(disk.Write(3, image).ok());
  PageImage read;
  ASSERT_TRUE(disk.Read(3, &read).ok());
  EXPECT_EQ(read, image);
}

TEST(DiskTest, CountsTransfers) {
  Disk disk(0, 8, 64);
  PageImage image(64);
  ASSERT_TRUE(disk.Write(0, image).ok());
  ASSERT_TRUE(disk.Write(1, image).ok());
  PageImage read;
  ASSERT_TRUE(disk.Read(0, &read).ok());
  EXPECT_EQ(disk.counters().page_writes, 2u);
  EXPECT_EQ(disk.counters().page_reads, 1u);
  EXPECT_EQ(disk.counters().total(), 3u);
}

TEST(DiskTest, OutOfRangeRejected) {
  Disk disk(0, 8, 64);
  PageImage image(64);
  EXPECT_TRUE(disk.Write(8, image).IsInvalidArgument());
  PageImage read;
  EXPECT_TRUE(disk.Read(9, &read).IsInvalidArgument());
}

TEST(DiskTest, WrongPayloadSizeRejected) {
  Disk disk(0, 8, 64);
  PageImage image(32);
  EXPECT_TRUE(disk.Write(0, image).IsInvalidArgument());
}

TEST(DiskTest, FailureLosesContentAndBlocksIo) {
  Disk disk(0, 4, 64);
  PageImage image(64);
  image.payload[0] = 0x11;
  ASSERT_TRUE(disk.Write(0, image).ok());
  disk.Fail();
  PageImage read;
  EXPECT_TRUE(disk.Read(0, &read).IsIoError());
  EXPECT_TRUE(disk.Write(0, image).IsIoError());
  disk.Replace();
  ASSERT_TRUE(disk.Read(0, &read).ok());
  EXPECT_EQ(read.payload[0], 0);  // Fresh medium, old content gone.
}

TEST(DiskTest, SilentCorruptionDetected) {
  Disk disk(0, 4, 64);
  FaultInjector injector((FaultConfig()));
  disk.AttachFaultInjector(&injector);
  PageImage image(64);
  image.payload[10] = 0x77;
  ASSERT_TRUE(disk.Write(2, image).ok());
  injector.ScheduleBitFlip(2, /*offset=*/10, /*mask=*/0xff);
  PageImage read;
  EXPECT_TRUE(disk.Read(2, &read).IsCorruption());
  // The flip damaged the medium, not just one read: it stays corrupt...
  EXPECT_TRUE(disk.Read(2, &read).IsCorruption());
  // ...until the slot is rewritten.
  ASSERT_TRUE(disk.Write(2, image).ok());
  ASSERT_TRUE(disk.Read(2, &read).ok());
  EXPECT_EQ(read.payload[10], 0x77);
}

TEST(DiskTest, MoveWriteStoresSameContent) {
  Disk disk(0, 8, 64);
  PageImage image(64);
  image.payload[7] = 0x5a;
  image.header.timestamp = 9;
  PageImage expected = image;
  ASSERT_TRUE(disk.Write(4, std::move(image)).ok());
  PageImage read;
  ASSERT_TRUE(disk.Read(4, &read).ok());
  EXPECT_EQ(read, expected);
  EXPECT_EQ(disk.counters().page_writes, 1u);
  // Move writes hit the same validation as copy writes.
  PageImage wrong(32);
  EXPECT_TRUE(disk.Write(0, std::move(wrong)).IsInvalidArgument());
}

TEST(ScratchPoolTest, RecyclesBuffersAndZeroes) {
  ScratchPool pool(64);
  EXPECT_EQ(pool.free_count(), 0u);
  {
    auto a = pool.Acquire();
    EXPECT_EQ(a->payload.size(), 64u);
    a->payload[3] = 0xcc;
    a->header.timestamp = 77;
  }  // Released back to the pool.
  EXPECT_EQ(pool.free_count(), 1u);
  auto b = pool.Acquire();
  EXPECT_EQ(pool.free_count(), 0u);
  // The recycled buffer comes back zeroed with a default header.
  EXPECT_TRUE(AllZero(b->payload.data(), b->payload.size()));
  EXPECT_EQ(b->header.timestamp, 0u);
}

TEST(ScratchPoolTest, TakePayloadDoesNotRecycle) {
  ScratchPool pool(64);
  {
    auto a = pool.Acquire();
    a->payload[0] = 0x1;
    std::vector<uint8_t> stolen = a.TakePayload();
    EXPECT_EQ(stolen.size(), 64u);
    EXPECT_EQ(stolen[0], 0x1);
  }
  // The stolen buffer must not return to the free list undersized.
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(ScratchPoolTest, ConcurrentAcquisitions) {
  ScratchPool pool(32);
  auto a = pool.Acquire();
  auto b = pool.Acquire();
  a->payload[0] = 0xaa;
  b->payload[0] = 0xbb;
  EXPECT_NE(a->payload.data(), b->payload.data());
  EXPECT_EQ(a->payload[0], 0xaa);
  EXPECT_EQ(b->payload[0], 0xbb);
}

TEST(DataPageMetaTest, RoundTrip) {
  std::vector<uint8_t> payload(64, 0xee);
  DataPageMeta meta;
  meta.txn_id = 77;
  meta.page_lsn = 123456789;
  meta.chain_prev = 42;
  StoreDataMeta(meta, &payload);
  EXPECT_EQ(LoadDataMeta(payload), meta);
  // User region untouched.
  EXPECT_EQ(payload[kDataRegionOffset], 0xee);
}

// ---------------------------------------------------------------------------
// Layout properties, swept over group sizes, parity copies and both kinds.
// ---------------------------------------------------------------------------

struct LayoutCase {
  LayoutKind kind;
  uint32_t n;
  uint32_t copies;
  uint32_t min_pages;
};

class LayoutPropertyTest : public ::testing::TestWithParam<LayoutCase> {
 protected:
  std::unique_ptr<Layout> MakeLayout() {
    const LayoutCase& c = GetParam();
    if (c.kind == LayoutKind::kDataStriping) {
      auto result = DataStripingLayout::Create(c.n, c.copies, c.min_pages);
      EXPECT_TRUE(result.ok());
      return std::move(result).value();
    }
    auto result = ParityStripingLayout::Create(c.n, c.copies, c.min_pages);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  }
};

TEST_P(LayoutPropertyTest, CapacityCoversRequest) {
  auto layout = MakeLayout();
  EXPECT_GE(layout->num_data_pages(), GetParam().min_pages);
  EXPECT_EQ(layout->num_disks(), GetParam().n + GetParam().copies);
}

TEST_P(LayoutPropertyTest, DataMappingIsInjective) {
  auto layout = MakeLayout();
  std::set<std::pair<DiskId, SlotId>> seen;
  for (PageId page = 0; page < layout->num_data_pages(); ++page) {
    const PhysicalLocation loc = layout->DataLocation(page);
    EXPECT_LT(loc.disk, layout->num_disks());
    EXPECT_LT(loc.slot, layout->slots_per_disk());
    EXPECT_TRUE(seen.insert({loc.disk, loc.slot}).second)
        << "collision at page " << page;
  }
}

TEST_P(LayoutPropertyTest, GroupMembersOnDistinctDisks) {
  auto layout = MakeLayout();
  for (GroupId group = 0; group < layout->num_groups(); ++group) {
    std::set<DiskId> disks;
    for (uint32_t i = 0; i < layout->data_pages_per_group(); ++i) {
      disks.insert(layout->DataLocation(layout->PageAt(group, i)).disk);
    }
    for (uint32_t t = 0; t < layout->parity_copies(); ++t) {
      disks.insert(layout->ParityLocation(group, t).disk);
    }
    EXPECT_EQ(disks.size(),
              layout->data_pages_per_group() + layout->parity_copies())
        << "group " << group << " reuses a disk";
  }
}

TEST_P(LayoutPropertyTest, GroupIndexRoundTrips) {
  auto layout = MakeLayout();
  for (PageId page = 0; page < layout->num_data_pages(); ++page) {
    const GroupId group = layout->GroupOf(page);
    const uint32_t index = layout->IndexInGroup(page);
    EXPECT_LT(group, layout->num_groups());
    EXPECT_LT(index, layout->data_pages_per_group());
    EXPECT_EQ(layout->PageAt(group, index), page);
  }
}

TEST_P(LayoutPropertyTest, ParityAndDataSlotsDisjoint) {
  auto layout = MakeLayout();
  std::set<std::pair<DiskId, SlotId>> data_slots;
  for (PageId page = 0; page < layout->num_data_pages(); ++page) {
    const PhysicalLocation loc = layout->DataLocation(page);
    data_slots.insert({loc.disk, loc.slot});
  }
  std::set<std::pair<DiskId, SlotId>> parity_slots;
  for (GroupId group = 0; group < layout->num_groups(); ++group) {
    for (uint32_t t = 0; t < layout->parity_copies(); ++t) {
      const PhysicalLocation loc = layout->ParityLocation(group, t);
      EXPECT_TRUE(parity_slots.insert({loc.disk, loc.slot}).second)
          << "parity collision in group " << group;
      EXPECT_FALSE(data_slots.contains({loc.disk, loc.slot}))
          << "parity overlays data in group " << group;
    }
  }
}

TEST_P(LayoutPropertyTest, ParityRotatesAcrossDisks) {
  auto layout = MakeLayout();
  if (layout->num_groups() < layout->num_disks()) {
    GTEST_SKIP() << "too few groups to observe rotation";
  }
  std::map<DiskId, int> load;
  for (GroupId group = 0; group < layout->num_groups(); ++group) {
    ++load[layout->ParityLocation(group, 0).disk];
  }
  // No disk may hold more than twice its fair share of primary parity.
  const double fair =
      static_cast<double>(layout->num_groups()) / layout->num_disks();
  for (const auto& [disk, count] : load) {
    EXPECT_LE(count, 2 * fair + 1) << "parity hotspot on disk " << disk;
  }
  EXPECT_GT(load.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllLayouts, LayoutPropertyTest,
    ::testing::Values(
        LayoutCase{LayoutKind::kDataStriping, 4, 2, 64},
        LayoutCase{LayoutKind::kDataStriping, 4, 1, 64},
        LayoutCase{LayoutKind::kDataStriping, 10, 2, 500},
        LayoutCase{LayoutKind::kDataStriping, 1, 2, 16},
        LayoutCase{LayoutKind::kDataStriping, 7, 2, 100},
        LayoutCase{LayoutKind::kParityStriping, 4, 2, 64},
        LayoutCase{LayoutKind::kParityStriping, 4, 1, 64},
        LayoutCase{LayoutKind::kParityStriping, 10, 2, 500},
        LayoutCase{LayoutKind::kParityStriping, 1, 2, 16},
        LayoutCase{LayoutKind::kParityStriping, 7, 2, 100}));

// Parity striping keeps consecutive pages on one disk (its design goal);
// data striping spreads them (Section 3).
TEST(LayoutContrastTest, SequentialityDiffers) {
  auto ps = ParityStripingLayout::Create(4, 2, 96);
  auto ds = DataStripingLayout::Create(4, 2, 96);
  ASSERT_TRUE(ps.ok());
  ASSERT_TRUE(ds.ok());
  int ps_same_disk = 0;
  int ds_same_disk = 0;
  for (PageId page = 0; page + 1 < 64; ++page) {
    ps_same_disk += ((*ps)->DataLocation(page).disk ==
                     (*ps)->DataLocation(page + 1).disk);
    ds_same_disk += ((*ds)->DataLocation(page).disk ==
                     (*ds)->DataLocation(page + 1).disk);
  }
  EXPECT_GT(ps_same_disk, 40);  // Mostly sequential within a disk.
  EXPECT_EQ(ds_same_disk, 0);   // Fully interleaved.
}

TEST(LayoutTest, InvalidArgumentsRejected) {
  EXPECT_FALSE(DataStripingLayout::Create(0, 2, 10).ok());
  EXPECT_FALSE(DataStripingLayout::Create(4, 3, 10).ok());
  EXPECT_FALSE(DataStripingLayout::Create(4, 2, 0).ok());
  EXPECT_FALSE(ParityStripingLayout::Create(0, 2, 10).ok());
  EXPECT_FALSE(ParityStripingLayout::Create(4, 0, 10).ok());
}

TEST(DiskArrayTest, EndToEndReadWrite) {
  DiskArray::Options options;
  options.data_pages_per_group = 4;
  options.parity_copies = 2;
  options.min_data_pages = 32;
  options.page_size = 128;
  auto array = DiskArray::Create(options);
  ASSERT_TRUE(array.ok());
  PageImage image(128);
  image.payload[0] = 0x5a;
  ASSERT_TRUE((*array)->WriteData(7, image).ok());
  PageImage read;
  ASSERT_TRUE((*array)->ReadData(7, &read).ok());
  EXPECT_EQ(read.payload[0], 0x5a);
}

TEST(DiskArrayTest, ParityPagesIndependentOfData) {
  DiskArray::Options options;
  options.data_pages_per_group = 4;
  options.min_data_pages = 32;
  options.page_size = 128;
  auto array = DiskArray::Create(options);
  ASSERT_TRUE(array.ok());
  PageImage parity(128);
  parity.payload[1] = 0x77;
  parity.header.parity_state = ParityState::kCommitted;
  ASSERT_TRUE((*array)->WriteParity(3, 0, parity).ok());
  PageImage read;
  ASSERT_TRUE((*array)->ReadParity(3, 0, &read).ok());
  EXPECT_EQ(read.payload[1], 0x77);
  EXPECT_EQ(read.header.parity_state, ParityState::kCommitted);
}

TEST(DiskArrayTest, RangeChecks) {
  DiskArray::Options options;
  options.min_data_pages = 16;
  options.page_size = 64;
  auto array = DiskArray::Create(options);
  ASSERT_TRUE(array.ok());
  PageImage image(64);
  EXPECT_TRUE(
      (*array)->WriteData((*array)->num_data_pages(), image)
          .IsInvalidArgument());
  EXPECT_TRUE((*array)->WriteParity(0, 2, image).IsInvalidArgument());
  EXPECT_TRUE(
      (*array)->WriteParity((*array)->num_groups(), 0, image)
          .IsInvalidArgument());
}

TEST(DiskArrayTest, FailAndReplaceDisk) {
  DiskArray::Options options;
  options.min_data_pages = 16;
  options.page_size = 64;
  auto array = DiskArray::Create(options);
  ASSERT_TRUE(array.ok());
  ASSERT_TRUE((*array)->FailDisk(1).ok());
  EXPECT_TRUE((*array)->DiskFailed(1));
  EXPECT_EQ((*array)->NumFailedDisks(), 1u);
  ASSERT_TRUE((*array)->ReplaceDisk(1).ok());
  EXPECT_FALSE((*array)->DiskFailed(1));
  EXPECT_TRUE((*array)->FailDisk(99).IsInvalidArgument());
}

TEST(DiskArrayTest, AggregateCounters) {
  DiskArray::Options options;
  options.min_data_pages = 16;
  options.page_size = 64;
  auto array = DiskArray::Create(options);
  ASSERT_TRUE(array.ok());
  PageImage image(64);
  for (PageId page = 0; page < 8; ++page) {
    ASSERT_TRUE((*array)->WriteData(page, image).ok());
  }
  EXPECT_EQ((*array)->counters().page_writes, 8u);
  (*array)->ResetCounters();
  EXPECT_EQ((*array)->counters().total(), 0u);
}


TEST(DiskTest, ReplaceWithoutFailureIsHarmless) {
  Disk disk(0, 4, 64);
  PageImage image(64);
  image.payload[0] = 0x42;
  ASSERT_TRUE(disk.Write(0, image).ok());
  disk.Replace();  // No failure in effect: content stays.
  PageImage read;
  ASSERT_TRUE(disk.Read(0, &read).ok());
  EXPECT_EQ(read.payload[0], 0x42);
}

TEST(DiskTest, HeaderCorruptionDetected) {
  Disk disk(0, 4, 64);
  FaultInjector injector((FaultConfig()));
  disk.AttachFaultInjector(&injector);
  PageImage image(64);
  image.header.timestamp = 7;
  ASSERT_TRUE(disk.Write(1, image).ok());
  // offset == page_size addresses the out-of-band header timestamp.
  injector.ScheduleBitFlip(1, /*offset=*/64, /*mask=*/0x01);
  PageImage read;
  EXPECT_TRUE(disk.Read(1, &read).IsCorruption());
}

TEST(FaultInjectorTest, TransientReadFailsOnceThenRecovers) {
  Disk disk(0, 4, 64);
  FaultInjector injector((FaultConfig()));
  disk.AttachFaultInjector(&injector);
  PageImage image(64);
  image.payload[0] = 0x1d;
  ASSERT_TRUE(disk.Write(0, image).ok());
  injector.ScheduleTransientRead(0, /*count=*/2);
  PageImage read;
  EXPECT_TRUE(disk.Read(0, &read).IsIoError());
  EXPECT_TRUE(disk.Read(0, &read).IsIoError());
  ASSERT_TRUE(disk.Read(0, &read).ok());  // Device recovered by itself.
  EXPECT_EQ(read.payload[0], 0x1d);
  EXPECT_EQ(injector.stats().transient_reads, 2u);
}

TEST(FaultInjectorTest, TransientWriteStoresNothing) {
  Disk disk(0, 4, 64);
  FaultInjector injector((FaultConfig()));
  disk.AttachFaultInjector(&injector);
  PageImage first(64);
  first.payload[0] = 0x01;
  ASSERT_TRUE(disk.Write(3, first).ok());
  PageImage second(64);
  second.payload[0] = 0x02;
  injector.ScheduleTransientWrite(3);
  EXPECT_TRUE(disk.Write(3, second).IsIoError());
  PageImage read;
  ASSERT_TRUE(disk.Read(3, &read).ok());
  EXPECT_EQ(read.payload[0], 0x01);  // The failed write left no trace.
  ASSERT_TRUE(disk.Write(3, second).ok());  // Retry succeeds.
  ASSERT_TRUE(disk.Read(3, &read).ok());
  EXPECT_EQ(read.payload[0], 0x02);
}

TEST(FaultInjectorTest, LatentSectorStickyUntilRewrite) {
  Disk disk(0, 4, 64);
  FaultInjector injector((FaultConfig()));
  disk.AttachFaultInjector(&injector);
  PageImage image(64);
  image.payload[5] = 0x3c;
  ASSERT_TRUE(disk.Write(1, image).ok());
  injector.InjectLatentSector(1);
  PageImage read;
  EXPECT_TRUE(disk.Read(1, &read).IsIoError());
  EXPECT_TRUE(disk.Read(1, &read).IsIoError());  // Sticky, not transient.
  EXPECT_TRUE(injector.HasLatent(1));
  ASSERT_TRUE(disk.Read(0, &read).ok());  // Other slots unaffected.
  ASSERT_TRUE(disk.Write(1, image).ok());  // Rewriting remaps the sector.
  EXPECT_FALSE(injector.HasLatent(1));
  ASSERT_TRUE(disk.Read(1, &read).ok());
  EXPECT_EQ(read.payload[5], 0x3c);
}

TEST(FaultInjectorTest, TornWriteReportsSuccessThenCorruption) {
  Disk disk(0, 4, 64);
  FaultInjector injector((FaultConfig()));
  disk.AttachFaultInjector(&injector);
  PageImage old_image(64);
  std::fill(old_image.payload.begin(), old_image.payload.end(), 0xaa);
  ASSERT_TRUE(disk.Write(2, old_image).ok());
  PageImage new_image(64);
  std::fill(new_image.payload.begin(), new_image.payload.end(), 0xbb);
  injector.ScheduleTornWrite(2);
  ASSERT_TRUE(disk.Write(2, new_image).ok());  // The tear is silent.
  PageImage read;
  EXPECT_TRUE(disk.Read(2, &read).IsCorruption());
  EXPECT_EQ(injector.stats().torn_writes, 1u);
  // A clean rewrite repairs the slot.
  ASSERT_TRUE(disk.Write(2, new_image).ok());
  ASSERT_TRUE(disk.Read(2, &read).ok());
  EXPECT_EQ(read.payload, new_image.payload);
}

TEST(FaultInjectorTest, ReplaceClearsLatentState) {
  Disk disk(0, 4, 64);
  FaultInjector injector((FaultConfig()));
  disk.AttachFaultInjector(&injector);
  injector.InjectLatentSector(0);
  injector.InjectLatentSector(2);
  EXPECT_EQ(injector.latent_count(), 2u);
  disk.Fail();
  disk.Replace();
  EXPECT_EQ(injector.latent_count(), 0u);  // New platters, no latent errors.
  PageImage read;
  ASSERT_TRUE(disk.Read(0, &read).ok());
  // Stats survive Replace: they describe the injector, not the medium.
  EXPECT_EQ(injector.stats().latent_sectors, 2u);
}

TEST(FaultInjectorTest, SeededRandomFaultsAreReproducibleAndCapped) {
  FaultConfig config;
  config.enabled = true;
  config.seed = 42;
  config.transient_read_p = 0.5;
  config.max_random_faults = 3;
  FaultInjector a(config);
  FaultInjector b(config);
  uint32_t faults_a = 0;
  for (SlotId s = 0; s < 100; ++s) {
    const FaultDecision da = a.OnRead(s, 64);
    const FaultDecision db = b.OnRead(s, 64);
    EXPECT_EQ(static_cast<int>(da.kind), static_cast<int>(db.kind));
    if (da.kind != FaultKind::kNone) {
      ++faults_a;
    }
  }
  EXPECT_EQ(faults_a, 3u);  // max_random_faults bounds the damage.
}

TEST(IoPolicyTest, RetryClassification) {
  IoPolicy policy;
  EXPECT_TRUE(RetryableIoError(Status::IoError("x"), /*disk_failed=*/false));
  // A failed disk is degraded mode, not a transient.
  EXPECT_FALSE(RetryableIoError(Status::IoError("x"), /*disk_failed=*/true));
  // Checksums do not heal by re-reading.
  EXPECT_FALSE(RetryableIoError(Status::Corruption("x"), false));
  EXPECT_FALSE(RetryableIoError(Status::Ok(), false));
  EXPECT_DOUBLE_EQ(RetryBackoffMs(policy, 1), policy.retry_backoff_ms);
  EXPECT_DOUBLE_EQ(RetryBackoffMs(policy, 3), 3 * policy.retry_backoff_ms);
}

TEST(DiskArrayFaultTest, RetryAbsorbsTransientsAndCounts) {
  DiskArray::Options options;
  options.min_data_pages = 8;
  auto array = DiskArray::Create(options);
  ASSERT_TRUE(array.ok());
  FaultConfig config;
  config.enabled = true;
  (*array)->ArmFaultInjection(config);
  PageImage image((*array)->page_size());
  image.payload[0] = 0x7e;
  ASSERT_TRUE((*array)->WriteData(0, image).ok());
  const DiskId disk = (*array)->layout().DataLocation(0).disk;
  (*array)->injector(disk)->ScheduleTransientRead(
      (*array)->layout().DataLocation(0).slot, 2);
  PageImage read;
  ASSERT_TRUE((*array)->ReadData(0, &read).ok());  // 2 retries absorb it.
  EXPECT_EQ(read.payload[0], 0x7e);
  EXPECT_EQ((*array)->policy_stats().io_retries, 2u);
  EXPECT_EQ((*array)->policy_stats().transient_faults, 1u);
  EXPECT_EQ((*array)->policy_stats().sector_errors, 0u);
}

TEST(DiskArrayFaultTest, ExhaustedRetriesSurfaceSectorError) {
  DiskArray::Options options;
  options.min_data_pages = 8;
  auto array = DiskArray::Create(options);
  ASSERT_TRUE(array.ok());
  FaultConfig config;
  config.enabled = true;
  (*array)->ArmFaultInjection(config);
  const DiskId disk = (*array)->layout().DataLocation(0).disk;
  (*array)->injector(disk)->InjectLatentSector(
      (*array)->layout().DataLocation(0).slot);
  PageImage read;
  EXPECT_TRUE((*array)->ReadData(0, &read).IsIoError());
  EXPECT_EQ((*array)->policy_stats().sector_errors, 1u);
  EXPECT_EQ((*array)->policy_stats().transient_faults, 0u);
}

TEST(DiskArrayFaultTest, ErrorBudgetEscalatesToDiskFailure) {
  DiskArray::Options options;
  options.min_data_pages = 8;
  auto array = DiskArray::Create(options);
  ASSERT_TRUE(array.ok());
  IoPolicy policy;
  policy.disk_error_budget = 2;
  (*array)->SetIoPolicy(policy);
  (*array)->RecordSectorError(0);
  EXPECT_FALSE((*array)->DiskFailed(0));
  EXPECT_TRUE((*array)->EscalatedDisks().empty());
  (*array)->RecordSectorError(0);
  EXPECT_TRUE((*array)->DiskFailed(0));
  ASSERT_EQ((*array)->EscalatedDisks().size(), 1u);
  EXPECT_EQ((*array)->EscalatedDisks()[0], 0u);
  EXPECT_EQ((*array)->policy_stats().escalations, 1u);
  // Replacing the disk clears the escalation flag and refills the budget.
  ASSERT_TRUE((*array)->ReplaceDisk(0).ok());
  EXPECT_TRUE((*array)->EscalatedDisks().empty());
  EXPECT_FALSE((*array)->DiskFailed(0));
}

TEST(IoCountersTest, Arithmetic) {
  IoCounters a{3, 4};
  IoCounters b{1, 2};
  a += b;
  EXPECT_EQ(a.page_reads, 4u);
  EXPECT_EQ(a.page_writes, 6u);
  EXPECT_EQ(a.total(), 10u);
  const IoCounters d = a - b;
  EXPECT_EQ(d.page_reads, 3u);
  EXPECT_EQ(d.page_writes, 4u);
}

TEST(DataPageMetaTest, DefaultsAreInvalid) {
  std::vector<uint8_t> payload(64, 0);
  const DataPageMeta meta = LoadDataMeta(payload);
  // A zeroed page decodes as txn 0 (invalid), lsn 0, chain 0 — and chain 0
  // is a VALID page id, so writers must always stamp chain_prev explicitly.
  EXPECT_EQ(meta.txn_id, kInvalidTxnId);
  EXPECT_EQ(meta.page_lsn, 0u);
}

TEST(DataPageMetaTest, StoreDoesNotTouchReservedPadding) {
  std::vector<uint8_t> payload(64, 0xCC);
  StoreDataMeta(DataPageMeta{}, &payload);
  EXPECT_EQ(payload[20], 0xCC);  // Reserved bytes [20, 24) untouched.
  EXPECT_EQ(payload[23], 0xCC);
}

TEST(DataStripingTest, StripeGeometryExact) {
  auto layout = DataStripingLayout::Create(4, 2, 40);
  ASSERT_TRUE(layout.ok());
  // 40 pages / 4 per group = 10 stripes; 6 disks.
  EXPECT_EQ((*layout)->num_groups(), 10u);
  EXPECT_EQ((*layout)->num_disks(), 6u);
  EXPECT_EQ((*layout)->slots_per_disk(), 10u);
  // Every member of stripe g sits at slot g.
  for (GroupId g = 0; g < 10; ++g) {
    for (uint32_t i = 0; i < 4; ++i) {
      EXPECT_EQ((*layout)->DataLocation((*layout)->PageAt(g, i)).slot, g);
    }
    EXPECT_EQ((*layout)->ParityLocation(g, 0).slot, g);
    EXPECT_EQ((*layout)->ParityLocation(g, 1).slot, g);
  }
}

TEST(DataStripingTest, TwinParityRotatesTogether) {
  auto layout = DataStripingLayout::Create(4, 2, 60);
  ASSERT_TRUE(layout.ok());
  // Across any window of num_disks consecutive stripes, each disk hosts
  // primary parity exactly once (left-symmetric rotation).
  const uint32_t d = (*layout)->num_disks();
  std::set<DiskId> seen;
  for (GroupId g = 0; g < d; ++g) {
    seen.insert((*layout)->ParityLocation(g, 0).disk);
  }
  EXPECT_EQ(seen.size(), d);
}

TEST(ParityStripingTest, AreaGeometryExact) {
  auto layout = ParityStripingLayout::Create(4, 2, 96);
  ASSERT_TRUE(layout.ok());
  const uint32_t d = (*layout)->num_disks();  // 6.
  EXPECT_EQ(d, 6u);
  // Each disk contributes exactly (d - 2) data areas worth of pages.
  EXPECT_EQ((*layout)->num_data_pages() % d, 0u);
}

TEST(DiskArrayTest, DegradedReadFailsAtArrayLevel) {
  DiskArray::Options options;
  options.min_data_pages = 16;
  options.page_size = 64;
  auto array = DiskArray::Create(options);
  ASSERT_TRUE(array.ok());
  // Find a page on disk 0 and fail that disk: the raw array read errors
  // (reconstruction is the parity layer's job).
  PageId victim = kInvalidPageId;
  for (PageId p = 0; p < (*array)->num_data_pages(); ++p) {
    if ((*array)->layout().DataLocation(p).disk == 0) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidPageId);
  ASSERT_TRUE((*array)->FailDisk(0).ok());
  PageImage read;
  EXPECT_TRUE((*array)->ReadData(victim, &read).IsIoError());
}


TEST(ServiceTimeTest, SequentialAccessIsCheap) {
  Disk disk(0, 1000, 64);
  PageImage image(64);
  // Sequential scan from slot 1 upward (the head parks at 0).
  for (SlotId slot = 1; slot < 101; ++slot) {
    ASSERT_TRUE(disk.Write(slot, image).ok());
  }
  const double sequential = disk.busy_ms();
  disk.ResetServiceClock();
  // Random-ish jumps of the same count.
  for (SlotId i = 0; i < 100; ++i) {
    ASSERT_TRUE(disk.Write((i * 397) % 1000, image).ok());
  }
  const double random = disk.busy_ms();
  EXPECT_LT(sequential * 5, random);
}

TEST(ServiceTimeTest, ArrayAggregatesBusyTime) {
  DiskArray::Options options;
  options.min_data_pages = 32;
  options.page_size = 64;
  auto array = DiskArray::Create(options);
  ASSERT_TRUE(array.ok());
  PageImage image(64);
  for (PageId page = 0; page < 16; ++page) {
    ASSERT_TRUE((*array)->WriteData(page, image).ok());
  }
  EXPECT_GT((*array)->TotalBusyMs(), 0.0);
  EXPECT_GT((*array)->MaxBusyMs(), 0.0);
  EXPECT_LE((*array)->MaxBusyMs(), (*array)->TotalBusyMs());
  (*array)->ResetServiceClocks();
  EXPECT_EQ((*array)->TotalBusyMs(), 0.0);
}

// The Gray et al. argument (paper Section 3.2): several independent
// sequential streams thrash the heads under data striping (every stream
// touches every disk) but stay disjoint under parity striping. Transfer
// counts are identical; service time is not.
TEST(ServiceTimeTest, ParityStripingWinsForConcurrentSequentialStreams) {
  auto run = [](LayoutKind kind) {
    DiskArray::Options options;
    options.layout_kind = kind;
    options.data_pages_per_group = 4;
    options.parity_copies = 2;
    options.min_data_pages = 240;
    options.page_size = 64;
    auto array = DiskArray::Create(options);
    EXPECT_TRUE(array.ok());
    PageImage image;
    const uint32_t pages = (*array)->num_data_pages();
    // Four interleaved sequential streams in different regions.
    const PageId starts[4] = {0, pages / 4, pages / 2, 3 * pages / 4};
    for (uint32_t step = 0; step < pages / 4; ++step) {
      for (const PageId start : starts) {
        EXPECT_TRUE((*array)->ReadData(start + step, &image).ok());
      }
    }
    return (*array)->MaxBusyMs();
  };
  const double striping = run(LayoutKind::kDataStriping);
  const double parity_striping = run(LayoutKind::kParityStriping);
  EXPECT_LT(parity_striping, striping * 0.7)
      << "parity striping should preserve per-stream sequentiality";
}

}  // namespace
}  // namespace rda
