#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"

namespace rda {
namespace {

// Parallel recovery must be an implementation detail: for every algorithm
// class the paper distinguishes ({page, record} logging x {FORCE, notFORCE}),
// running the same crash at recovery_threads=1 and recovery_threads=4 must
// produce byte-identical data pages, identical recovery reports (including
// per-phase page-transfer counts) and an identical Dirty_Set.
struct ConfigCase {
  LoggingMode mode;
  bool force;
};

std::string CaseName(const ::testing::TestParamInfo<ConfigCase>& info) {
  std::string name =
      info.param.mode == LoggingMode::kPageLogging ? "Page" : "Record";
  name += info.param.force ? "Force" : "NoForce";
  return name;
}

DatabaseOptions BaseOptions(uint32_t threads) {
  DatabaseOptions options;
  options.array.data_pages_per_group = 4;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 64;
  options.array.page_size = 128;
  options.buffer.capacity = 16;
  options.txn.rda_undo = true;
  options.txn.record_size = 16;
  options.recovery.recovery_threads = threads;
  return options;
}

// Everything recovery is allowed to influence, captured for comparison.
struct EndState {
  CrashRecoveryReport report;
  std::vector<std::vector<uint8_t>> pages;
  std::vector<GroupId> dirty_groups;
  bool parity_ok = false;
};

void ExpectSameOutcome(const EndState& serial, const EndState& parallel) {
  EXPECT_EQ(serial.pages, parallel.pages) << "data pages diverged";
  EXPECT_EQ(serial.dirty_groups, parallel.dirty_groups);
  EXPECT_TRUE(serial.parity_ok);
  EXPECT_TRUE(parallel.parity_ok);
  EXPECT_EQ(serial.report.winners, parallel.report.winners);
  EXPECT_EQ(serial.report.losers, parallel.report.losers);
  EXPECT_EQ(serial.report.groups_finalized, parallel.report.groups_finalized);
  EXPECT_EQ(serial.report.parity_undos, parallel.report.parity_undos);
  EXPECT_EQ(serial.report.logged_undos, parallel.report.logged_undos);
  EXPECT_EQ(serial.report.redo_applied, parallel.report.redo_applied);
  EXPECT_EQ(serial.report.redo_skipped, parallel.report.redo_skipped);
  EXPECT_EQ(serial.report.chain_pages_walked,
            parallel.report.chain_pages_walked);
  ASSERT_EQ(serial.report.phases.size(), parallel.report.phases.size());
  for (size_t i = 0; i < serial.report.phases.size(); ++i) {
    EXPECT_EQ(serial.report.phases[i].phase, parallel.report.phases[i].phase);
    EXPECT_EQ(serial.report.phases[i].page_transfers,
              parallel.report.phases[i].page_transfers)
        << "phase " << i;
  }
}

class ParallelRecoveryTest : public ::testing::TestWithParam<ConfigCase> {
 protected:
  void Open(uint32_t threads) {
    DatabaseOptions options = BaseOptions(threads);
    options.txn.logging_mode = GetParam().mode;
    options.txn.force = GetParam().force;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  Status Write(TxnId txn, PageId page, uint8_t fill) {
    if (GetParam().mode == LoggingMode::kRecordLogging) {
      return db_->WriteRecord(txn, page, 0, std::vector<uint8_t>(16, fill));
    }
    return db_->WritePage(txn, page,
                          std::vector<uint8_t>(db_->user_page_size(), fill));
  }

  void Steal(PageId page) {
    Frame* frame = db_->txn_manager()->pool()->Lookup(page);
    ASSERT_NE(frame, nullptr);
    ASSERT_TRUE(db_->txn_manager()->pool()->PropagateFrame(frame).ok());
  }

  void Populate() {
    for (PageId page = 0; page < db_->num_pages(); ++page) {
      auto txn = db_->Begin();
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE(Write(*txn, page, static_cast<uint8_t>(page + 1)).ok());
      ASSERT_TRUE(db_->Commit(*txn).ok());
    }
  }

  // A crash scenario touching every recovery mechanism at once: buffered
  // winners needing REDO, a committed-but-unfinalized dirty group needing
  // roll-forward, a parity-undo loser, a logged-undo loser and a buffered
  // loser that vanishes.
  void StageCrash() {
    for (uint32_t k = 0; k < 5; ++k) {
      auto winner = db_->Begin();
      ASSERT_TRUE(winner.ok());
      ASSERT_TRUE(Write(*winner, k, static_cast<uint8_t>(0xA0 + k)).ok());
      ASSERT_TRUE(
          Write(*winner, 19 + 4 * k, static_cast<uint8_t>(0xB0 + k)).ok());
      ASSERT_TRUE(db_->Commit(*winner).ok());
    }

    // Commit record on the stable log, crash before twin finalization.
    auto unfinalized = db_->Begin();
    ASSERT_TRUE(unfinalized.ok());
    ASSERT_TRUE(Write(*unfinalized, 40, 0xE1).ok());
    Steal(40);
    LogRecord commit;
    commit.type = LogRecordType::kCommit;
    commit.txn = *unfinalized;
    ASSERT_TRUE(db_->log()->Append(std::move(commit)).ok());
    ASSERT_TRUE(db_->log()->Flush().ok());

    auto parity_loser = db_->Begin();
    ASSERT_TRUE(parity_loser.ok());
    ASSERT_TRUE(Write(*parity_loser, 8, 0xC1).ok());
    Steal(8);

    auto logged_loser = db_->Begin();
    ASSERT_TRUE(logged_loser.ok());
    ASSERT_TRUE(Write(*logged_loser, 12, 0xD1).ok());
    ASSERT_TRUE(Write(*logged_loser, 13, 0xD2).ok());
    Steal(12);
    Steal(13);

    auto buffered_loser = db_->Begin();
    ASSERT_TRUE(buffered_loser.ok());
    ASSERT_TRUE(Write(*buffered_loser, 50, 0xF1).ok());
  }

  EndState Capture(CrashRecoveryReport report) {
    EndState state;
    state.report = std::move(report);
    for (PageId page = 0; page < db_->num_pages(); ++page) {
      auto payload = db_->RawReadPage(page);
      EXPECT_TRUE(payload.ok()) << payload.status().ToString();
      state.pages.push_back(std::move(payload).value());
    }
    state.dirty_groups = db_->parity()->directory().AllDirtyGroups();
    auto ok = db_->VerifyAllParity();
    EXPECT_TRUE(ok.ok());
    state.parity_ok = ok.ok() && *ok;
    return state;
  }

  EndState RunCrashScenario(uint32_t threads) {
    Open(threads);
    Populate();
    StageCrash();
    db_->Crash();
    auto report = db_->Recover();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return Capture(std::move(report).value());
  }

  EndState RunRebuildScenario(uint32_t threads, DiskId disk) {
    Open(threads);
    Populate();
    EXPECT_TRUE(db_->FailDisk(disk).ok());
    auto report = db_->RebuildDisk(disk);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    EndState state = Capture(CrashRecoveryReport{});
    // Fold the media report into comparable fields.
    state.report.groups_finalized = report->data_pages_rebuilt;
    state.report.parity_undos = report->parity_pages_rebuilt;
    state.report.logged_undos = report->obsolete_twins_reset;
    for (const auto& phase : report->phases) {
      state.report.phases.push_back(phase);
    }
    return state;
  }

  std::unique_ptr<Database> db_;
};

TEST_P(ParallelRecoveryTest, CrashRecoveryMatchesSerialAtFourThreads) {
  EndState serial = RunCrashScenario(1);
  EndState parallel = RunCrashScenario(4);
  ExpectSameOutcome(serial, parallel);
}

TEST_P(ParallelRecoveryTest, MediaRebuildMatchesSerialAtFourThreads) {
  // Disk 1 holds data pages; the last disks hold parity twins. Both kinds
  // of rebuild work must match the serial pass.
  EndState serial_data = RunRebuildScenario(1, 1);
  EndState parallel_data = RunRebuildScenario(4, 1);
  ExpectSameOutcome(serial_data, parallel_data);

  const DiskId parity_disk = static_cast<DiskId>(
      db_->array()->layout().ParityLocation(0, 0).disk);
  EndState serial_parity = RunRebuildScenario(1, parity_disk);
  EndState parallel_parity = RunRebuildScenario(4, parity_disk);
  ExpectSameOutcome(serial_parity, parallel_parity);
}

TEST_P(ParallelRecoveryTest, ScrubMatchesSerialAtFourThreads) {
  for (const uint32_t threads : {1u, 4u}) {
    Open(threads);
    Populate();
    auto report = db_->Scrub();
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->groups_checked, db_->array()->num_groups());
    EXPECT_TRUE(report->repaired.empty());
    EXPECT_EQ(report->groups_skipped_dirty, 0u);
  }
}

TEST_P(ParallelRecoveryTest, ArchiveRestoreMatchesSerialAtFourThreads) {
  std::vector<EndState> states;
  for (const uint32_t threads : {1u, 4u}) {
    Open(threads);
    Populate();
    ASSERT_TRUE(db_->TakeArchive(false).ok());
    // A catastrophe the array cannot survive: two disks at once.
    ASSERT_TRUE(db_->FailDisk(0).ok());
    ASSERT_TRUE(db_->FailDisk(1).ok());
    auto report = db_->RestoreFromArchive();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    states.push_back(Capture(std::move(report).value()));
  }
  ExpectSameOutcome(states[0], states[1]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelRecoveryTest,
    ::testing::Values(ConfigCase{LoggingMode::kPageLogging, true},
                      ConfigCase{LoggingMode::kPageLogging, false},
                      ConfigCase{LoggingMode::kRecordLogging, true},
                      ConfigCase{LoggingMode::kRecordLogging, false}),
    CaseName);

// --- fault-injection interaction (DESIGN.md sections 10 + 13) ---

// A latent sector fault hit by a rebuild worker must escalate through the
// IoPolicy error budget (second failure -> kDataLoss) without wedging the
// worker pool: the pool must still be usable for the archive restore that
// follows. Runs at 1 and 4 threads; the outcome is identical.
TEST(ParallelRebuildFaultTest, LatentFaultEscalatesWithoutDeadlock) {
  std::vector<std::vector<std::vector<uint8_t>>> restored_pages;
  for (const uint32_t threads : {1u, 4u}) {
    DatabaseOptions options = BaseOptions(threads);
    options.txn.logging_mode = LoggingMode::kPageLogging;
    options.txn.force = true;
    options.fault.enabled = true;       // Scripted injections only.
    options.io.disk_error_budget = 1;   // First sector error escalates.
    auto open = Database::Open(options);
    ASSERT_TRUE(open.ok()) << open.status().ToString();
    std::unique_ptr<Database> db = std::move(open).value();
    for (PageId page = 0; page < db->num_pages(); ++page) {
      auto txn = db->Begin();
      ASSERT_TRUE(txn.ok());
      std::vector<uint8_t> bytes(db->user_page_size(),
                                 static_cast<uint8_t>(page + 1));
      ASSERT_TRUE(db->WritePage(*txn, page, bytes).ok());
      ASSERT_TRUE(db->Commit(*txn).ok());
    }
    ASSERT_TRUE(db->TakeArchive(false).ok());

    // Fail the disk holding group 0's consistent parity twin; rebuilding it
    // recomputes parity from the data pages. Plant a latent sector under
    // one of those data reads: healing cannot reconstruct (the parity it
    // needs is on the failed disk), and RecordSectorError blows the error
    // budget — a second disk failure in mid-rebuild.
    const Layout& layout = db->array()->layout();
    const GroupState& state = db->parity()->directory().Get(0);
    const DiskId victim = layout.ParityLocation(0, state.valid_twin).disk;
    const PhysicalLocation faulty =
        layout.DataLocation(layout.PageAt(0, 1));
    ASSERT_NE(faulty.disk, victim);
    db->array()->injector(faulty.disk)->InjectLatentSector(faulty.slot);

    ASSERT_TRUE(db->FailDisk(victim).ok());
    auto rebuild = db->RebuildDisk(victim);
    ASSERT_FALSE(rebuild.ok()) << "threads=" << threads;
    EXPECT_TRUE(rebuild.status().IsDataLoss())
        << rebuild.status().ToString();
    EXPECT_GE(db->array()->policy_stats().escalations, 1u);
    EXPECT_TRUE(db->array()->DiskFailed(faulty.disk));

    // The pool survived: the (pooled) archive restore completes and the
    // database is whole again.
    auto restore = db->RestoreFromArchive();
    ASSERT_TRUE(restore.ok()) << restore.status().ToString();
    std::vector<std::vector<uint8_t>> pages;
    for (PageId page = 0; page < db->num_pages(); ++page) {
      auto payload = db->RawReadPage(page);
      ASSERT_TRUE(payload.ok());
      EXPECT_EQ((*payload)[kDataRegionOffset],
                static_cast<uint8_t>(page + 1));
      pages.push_back(std::move(payload).value());
    }
    auto ok = db->VerifyAllParity();
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(*ok);
    restored_pages.push_back(std::move(pages));
  }
  EXPECT_EQ(restored_pages[0], restored_pages[1]);
}

}  // namespace
}  // namespace rda
