#include <gtest/gtest.h>

#include <memory>

#include "storage/data_page_meta.h"
#include "txn/record_page.h"
#include "txn/transaction_manager.h"

namespace rda {
namespace {

TEST(RecordPageViewTest, SlotArithmetic) {
  EXPECT_EQ(RecordPageView::SlotsPerPage(256, 32),
            (256 - kDataRegionOffset) / 32);
  EXPECT_EQ(RecordPageView::SlotsPerPage(256, 0), 0u);
  EXPECT_EQ(RecordPageView::SlotsPerPage(kDataRegionOffset, 8), 0u);
}

TEST(RecordPageViewTest, ReadWriteRoundTrip) {
  std::vector<uint8_t> payload(256, 0);
  RecordPageView view(&payload, 32);
  std::vector<uint8_t> record(32, 0x7a);
  ASSERT_TRUE(view.Write(2, record).ok());
  std::vector<uint8_t> read;
  ASSERT_TRUE(view.Read(2, &read).ok());
  EXPECT_EQ(read, record);
  // Neighbours untouched.
  ASSERT_TRUE(view.Read(1, &read).ok());
  EXPECT_TRUE(std::all_of(read.begin(), read.end(),
                          [](uint8_t b) { return b == 0; }));
}

TEST(RecordPageViewTest, ShortWritesZeroPad) {
  std::vector<uint8_t> payload(256, 0xff);
  RecordPageView view(&payload, 32);
  ASSERT_TRUE(view.Write(0, {1, 2, 3}).ok());
  std::vector<uint8_t> read;
  ASSERT_TRUE(view.Read(0, &read).ok());
  EXPECT_EQ(read[0], 1);
  EXPECT_EQ(read[2], 3);
  EXPECT_EQ(read[3], 0);
  EXPECT_EQ(read[31], 0);
}

TEST(RecordPageViewTest, BoundsChecked) {
  std::vector<uint8_t> payload(256, 0);
  RecordPageView view(&payload, 32);
  std::vector<uint8_t> read;
  EXPECT_TRUE(view.Read(view.num_slots(), &read).IsInvalidArgument());
  EXPECT_TRUE(view.Write(0, std::vector<uint8_t>(33)).IsInvalidArgument());
}

TEST(RecordPageViewTest, RecordsStartAfterMeta) {
  std::vector<uint8_t> payload(256, 0);
  RecordPageView view(&payload, 32);
  EXPECT_EQ(view.SlotOffset(0), kDataRegionOffset);
  ASSERT_TRUE(view.Write(0, std::vector<uint8_t>(32, 0xee)).ok());
  DataPageMeta meta;
  meta.txn_id = 123;
  StoreDataMeta(meta, &payload);
  std::vector<uint8_t> read;
  ASSERT_TRUE(view.Read(0, &read).ok());
  EXPECT_EQ(read[0], 0xee);  // Meta write did not clobber the record.
}

// ---------------------------------------------------------------------------
// TransactionManager.
// ---------------------------------------------------------------------------

class TxnManagerTest : public ::testing::Test {
 protected:
  void Build(const TxnConfig& config, uint32_t buffer_capacity = 16) {
    DiskArray::Options array_options;
    array_options.data_pages_per_group = 4;
    array_options.parity_copies = 2;
    array_options.min_data_pages = 48;
    array_options.page_size = 128;
    auto array = DiskArray::Create(array_options);
    ASSERT_TRUE(array.ok());
    array_ = std::move(array).value();
    parity_ = std::make_unique<TwinParityManager>(array_.get());
    ASSERT_TRUE(parity_->FormatArray().ok());
    log_ = std::make_unique<LogManager>(LogManager::Options{});
    locks_ = std::make_unique<LockManager>();
    BufferPool::Options pool_options;
    pool_options.capacity = buffer_capacity;
    pool_options.page_size = 128;
    tm_ = std::make_unique<TransactionManager>(config, parity_.get(),
                                               log_.get(), locks_.get(),
                                               pool_options);
  }

  std::vector<uint8_t> UserBytes(uint8_t fill) {
    return std::vector<uint8_t>(tm_->user_page_size(), fill);
  }

  std::vector<uint8_t> DiskUserBytes(PageId page) {
    PageImage image;
    EXPECT_TRUE(array_->ReadData(page, &image).ok());
    return std::vector<uint8_t>(image.payload.begin() + kDataRegionOffset,
                                image.payload.end());
  }

  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<TwinParityManager> parity_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<LockManager> locks_;
  std::unique_ptr<TransactionManager> tm_;
};

TEST_F(TxnManagerTest, PageWriteReadCommit) {
  Build(TxnConfig{});
  auto txn = tm_->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(tm_->WritePage(*txn, 3, UserBytes(0x42)).ok());
  std::vector<uint8_t> read;
  ASSERT_TRUE(tm_->ReadPage(*txn, 3, &read).ok());
  EXPECT_EQ(read, UserBytes(0x42));
  ASSERT_TRUE(tm_->Commit(*txn).ok());
  EXPECT_EQ(DiskUserBytes(3), UserBytes(0x42));  // FORCE propagated it.
  EXPECT_EQ(tm_->stats().committed, 1u);
}

TEST_F(TxnManagerTest, ForceCommitUsesUnloggedSteals) {
  Build(TxnConfig{});
  auto txn = tm_->Begin();
  // Pages 0 and 4 live in different parity groups (N=4).
  ASSERT_TRUE(tm_->WritePage(*txn, 0, UserBytes(0x01)).ok());
  ASSERT_TRUE(tm_->WritePage(*txn, 4, UserBytes(0x02)).ok());
  ASSERT_TRUE(tm_->Commit(*txn).ok());
  EXPECT_EQ(tm_->stats().before_images_avoided, 2u);
  EXPECT_EQ(tm_->stats().before_images_logged, 0u);
  EXPECT_EQ(parity_->stats().commits_finalized, 2u);
}

TEST_F(TxnManagerTest, SameGroupPagesForceLogging) {
  Build(TxnConfig{});
  auto txn = tm_->Begin();
  // Pages 0 and 1 share parity group 0: the second steal must be logged.
  ASSERT_TRUE(tm_->WritePage(*txn, 0, UserBytes(0x01)).ok());
  ASSERT_TRUE(tm_->WritePage(*txn, 1, UserBytes(0x02)).ok());
  ASSERT_TRUE(tm_->Commit(*txn).ok());
  EXPECT_EQ(tm_->stats().before_images_avoided, 1u);
  EXPECT_EQ(tm_->stats().before_images_logged, 1u);
}

TEST_F(TxnManagerTest, RdaDisabledLogsEverything) {
  TxnConfig config;
  config.rda_undo = false;
  Build(config);
  auto txn = tm_->Begin();
  ASSERT_TRUE(tm_->WritePage(*txn, 0, UserBytes(0x01)).ok());
  ASSERT_TRUE(tm_->WritePage(*txn, 4, UserBytes(0x02)).ok());
  ASSERT_TRUE(tm_->Commit(*txn).ok());
  EXPECT_EQ(tm_->stats().before_images_avoided, 0u);
  EXPECT_EQ(tm_->stats().before_images_logged, 2u);
}

TEST_F(TxnManagerTest, AbortBeforeAnyStealDiscardsBufferOnly) {
  Build(TxnConfig{});
  auto txn = tm_->Begin();
  ASSERT_TRUE(tm_->WritePage(*txn, 2, UserBytes(0x55)).ok());
  ASSERT_TRUE(tm_->Abort(*txn).ok());
  EXPECT_EQ(DiskUserBytes(2), UserBytes(0x00));  // Never reached disk.
  EXPECT_EQ(parity_->stats().parity_undos, 0u);
  // A new transaction sees the original content.
  auto txn2 = tm_->Begin();
  std::vector<uint8_t> read;
  ASSERT_TRUE(tm_->ReadPage(*txn2, 2, &read).ok());
  EXPECT_EQ(read, UserBytes(0x00));
}

TEST_F(TxnManagerTest, AbortAfterStealUsesParityUndo) {
  Build(TxnConfig{});
  // Commit an initial value first.
  auto setup = tm_->Begin();
  ASSERT_TRUE(tm_->WritePage(*setup, 2, UserBytes(0x11)).ok());
  ASSERT_TRUE(tm_->Commit(*setup).ok());

  auto txn = tm_->Begin();
  ASSERT_TRUE(tm_->WritePage(*txn, 2, UserBytes(0x99)).ok());
  Frame* frame = tm_->pool()->Lookup(2);
  ASSERT_NE(frame, nullptr);
  ASSERT_TRUE(tm_->pool()->PropagateFrame(frame).ok());
  EXPECT_EQ(DiskUserBytes(2), UserBytes(0x99));  // Uncommitted on disk.

  ASSERT_TRUE(tm_->Abort(*txn).ok());
  EXPECT_EQ(DiskUserBytes(2), UserBytes(0x11));
  EXPECT_EQ(parity_->stats().parity_undos, 1u);
  EXPECT_EQ(tm_->stats().before_images_logged, 0u);
}

TEST_F(TxnManagerTest, AbortMixedLoggedAndUnloggedSteals) {
  Build(TxnConfig{});
  auto setup = tm_->Begin();
  ASSERT_TRUE(tm_->WritePage(*setup, 0, UserBytes(0x10)).ok());
  ASSERT_TRUE(tm_->WritePage(*setup, 1, UserBytes(0x20)).ok());
  ASSERT_TRUE(tm_->Commit(*setup).ok());
  tm_->ResetStats();  // The setup commit itself stole pages.

  auto txn = tm_->Begin();
  ASSERT_TRUE(tm_->WritePage(*txn, 0, UserBytes(0xA0)).ok());
  ASSERT_TRUE(tm_->WritePage(*txn, 1, UserBytes(0xB0)).ok());
  for (const PageId page : {0u, 1u}) {
    Frame* frame = tm_->pool()->Lookup(page);
    ASSERT_NE(frame, nullptr);
    ASSERT_TRUE(tm_->pool()->PropagateFrame(frame).ok());
  }
  EXPECT_EQ(tm_->stats().before_images_avoided, 1u);
  EXPECT_EQ(tm_->stats().before_images_logged, 1u);

  ASSERT_TRUE(tm_->Abort(*txn).ok());
  EXPECT_EQ(DiskUserBytes(0), UserBytes(0x10));
  EXPECT_EQ(DiskUserBytes(1), UserBytes(0x20));
  auto ok = parity_->VerifyGroupParity(0);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(TxnManagerTest, StealViaEvictionFollowsRule) {
  Build(TxnConfig{}, /*buffer_capacity=*/2);
  auto txn = tm_->Begin();
  ASSERT_TRUE(tm_->WritePage(*txn, 0, UserBytes(0x31)).ok());
  // Touch enough other pages to evict page 0 (capacity 2).
  std::vector<uint8_t> scratch;
  ASSERT_TRUE(tm_->ReadPage(*txn, 8, &scratch).ok());
  ASSERT_TRUE(tm_->ReadPage(*txn, 12, &scratch).ok());
  EXPECT_EQ(DiskUserBytes(0), UserBytes(0x31));  // Stolen.
  EXPECT_EQ(tm_->stats().before_images_avoided, 1u);
  EXPECT_TRUE(parity_->directory().Get(0).dirty);
  ASSERT_TRUE(tm_->Abort(*txn).ok());
  EXPECT_EQ(DiskUserBytes(0), UserBytes(0x00));
  EXPECT_FALSE(parity_->directory().Get(0).dirty);
}

TEST_F(TxnManagerTest, RereferenceAfterStealStaysUnlogged) {
  // The Figure 3 self-loop: update, steal, re-reference, update, steal
  // again — still no UNDO logging.
  Build(TxnConfig{});
  auto txn = tm_->Begin();
  ASSERT_TRUE(tm_->WritePage(*txn, 5, UserBytes(0x41)).ok());
  Frame* frame = tm_->pool()->Lookup(5);
  ASSERT_TRUE(tm_->pool()->PropagateFrame(frame).ok());
  ASSERT_TRUE(tm_->WritePage(*txn, 5, UserBytes(0x42)).ok());
  frame = tm_->pool()->Lookup(5);
  ASSERT_TRUE(tm_->pool()->PropagateFrame(frame).ok());
  EXPECT_EQ(tm_->stats().before_images_logged, 0u);
  EXPECT_EQ(parity_->stats().unlogged_repeat, 1u);
  ASSERT_TRUE(tm_->Abort(*txn).ok());
  EXPECT_EQ(DiskUserBytes(5), UserBytes(0x00));
}

TEST_F(TxnManagerTest, LocksBlockConflictingWriters) {
  Build(TxnConfig{});
  auto t1 = tm_->Begin();
  auto t2 = tm_->Begin();
  ASSERT_TRUE(tm_->WritePage(*t1, 3, UserBytes(0x51)).ok());
  EXPECT_TRUE(tm_->WritePage(*t2, 3, UserBytes(0x52)).IsBusy());
  std::vector<uint8_t> read;
  EXPECT_TRUE(tm_->ReadPage(*t2, 3, &read).IsBusy());
  ASSERT_TRUE(tm_->Commit(*t1).ok());
  EXPECT_TRUE(tm_->WritePage(*t2, 3, UserBytes(0x52)).ok());
  ASSERT_TRUE(tm_->Commit(*t2).ok());
  EXPECT_EQ(DiskUserBytes(3), UserBytes(0x52));
}

TEST_F(TxnManagerTest, ReadOnlyTransactionWritesNoLog) {
  Build(TxnConfig{});
  auto txn = tm_->Begin();
  std::vector<uint8_t> read;
  ASSERT_TRUE(tm_->ReadPage(*txn, 1, &read).ok());
  ASSERT_TRUE(tm_->Commit(*txn).ok());
  EXPECT_EQ(log_->next_lsn(), 0u);
}

TEST_F(TxnManagerTest, WrongModeApisRejected) {
  Build(TxnConfig{});  // Page logging.
  auto txn = tm_->Begin();
  std::vector<uint8_t> read;
  EXPECT_TRUE(
      tm_->ReadRecord(*txn, 0, 0, &read).IsFailedPrecondition());
  EXPECT_TRUE(tm_->WriteRecord(*txn, 0, 0, {1}).IsFailedPrecondition());

  TxnConfig record_config;
  record_config.logging_mode = LoggingMode::kRecordLogging;
  Build(record_config);
  auto txn2 = tm_->Begin();
  EXPECT_TRUE(tm_->ReadPage(*txn2, 0, &read).IsFailedPrecondition());
}

TEST_F(TxnManagerTest, UnknownAndFinishedTransactionsRejected) {
  Build(TxnConfig{});
  EXPECT_TRUE(tm_->Commit(999).IsNotFound());
  auto txn = tm_->Begin();
  ASSERT_TRUE(tm_->Commit(*txn).ok());
  EXPECT_TRUE(tm_->Commit(*txn).IsFailedPrecondition());
  EXPECT_TRUE(tm_->Abort(*txn).IsFailedPrecondition());
  EXPECT_TRUE(tm_->WritePage(*txn, 0, UserBytes(1)).IsFailedPrecondition());
}

TEST_F(TxnManagerTest, WritePageSizeValidated) {
  Build(TxnConfig{});
  auto txn = tm_->Begin();
  EXPECT_TRUE(
      tm_->WritePage(*txn, 0, std::vector<uint8_t>(5)).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Record-logging mode.
// ---------------------------------------------------------------------------

class RecordTxnTest : public TxnManagerTest {
 protected:
  void SetUp() override {
    TxnConfig config;
    config.logging_mode = LoggingMode::kRecordLogging;
    config.record_size = 16;
    Build(config);
  }

  std::vector<uint8_t> Record(uint8_t fill) {
    return std::vector<uint8_t>(16, fill);
  }
};

TEST_F(RecordTxnTest, RecordWriteReadCommit) {
  auto txn = tm_->Begin();
  ASSERT_TRUE(tm_->WriteRecord(*txn, 1, 2, Record(0x61)).ok());
  std::vector<uint8_t> read;
  ASSERT_TRUE(tm_->ReadRecord(*txn, 1, 2, &read).ok());
  EXPECT_EQ(read, Record(0x61));
  ASSERT_TRUE(tm_->Commit(*txn).ok());
  auto txn2 = tm_->Begin();
  ASSERT_TRUE(tm_->ReadRecord(*txn2, 1, 2, &read).ok());
  EXPECT_EQ(read, Record(0x61));
}

TEST_F(RecordTxnTest, TwoTransactionsSharePage) {
  auto t1 = tm_->Begin();
  auto t2 = tm_->Begin();
  ASSERT_TRUE(tm_->WriteRecord(*t1, 1, 0, Record(0x71)).ok());
  ASSERT_TRUE(tm_->WriteRecord(*t2, 1, 1, Record(0x72)).ok());
  ASSERT_TRUE(tm_->Commit(*t1).ok());
  ASSERT_TRUE(tm_->Commit(*t2).ok());
  auto reader = tm_->Begin();
  std::vector<uint8_t> read;
  ASSERT_TRUE(tm_->ReadRecord(*reader, 1, 0, &read).ok());
  EXPECT_EQ(read, Record(0x71));
  ASSERT_TRUE(tm_->ReadRecord(*reader, 1, 1, &read).ok());
  EXPECT_EQ(read, Record(0x72));
}

TEST_F(RecordTxnTest, AbortRevertsOnlyOwnRecords) {
  auto t1 = tm_->Begin();
  auto t2 = tm_->Begin();
  ASSERT_TRUE(tm_->WriteRecord(*t1, 1, 0, Record(0x81)).ok());
  ASSERT_TRUE(tm_->WriteRecord(*t2, 1, 1, Record(0x82)).ok());
  ASSERT_TRUE(tm_->Abort(*t1).ok());
  std::vector<uint8_t> read;
  auto reader = *t2;
  ASSERT_TRUE(tm_->ReadRecord(reader, 1, 1, &read).ok());
  EXPECT_EQ(read, Record(0x82));  // t2's record survives.
  ASSERT_TRUE(tm_->Commit(*t2).ok());
  auto r2 = tm_->Begin();
  ASSERT_TRUE(tm_->ReadRecord(*r2, 1, 0, &read).ok());
  EXPECT_EQ(read, Record(0x00));  // t1's record rolled back.
}

TEST_F(RecordTxnTest, SharedPageStealIsLoggedPerModifier) {
  auto t1 = tm_->Begin();
  auto t2 = tm_->Begin();
  ASSERT_TRUE(tm_->WriteRecord(*t1, 1, 0, Record(0x91)).ok());
  ASSERT_TRUE(tm_->WriteRecord(*t2, 1, 1, Record(0x92)).ok());
  Frame* frame = tm_->pool()->Lookup(1);
  ASSERT_NE(frame, nullptr);
  ASSERT_TRUE(tm_->pool()->PropagateFrame(frame).ok());
  // A multi-modifier steal cannot use parity coverage: one BI per record.
  EXPECT_EQ(tm_->stats().before_images_logged, 2u);
  EXPECT_EQ(tm_->stats().before_images_avoided, 0u);

  ASSERT_TRUE(tm_->Abort(*t1).ok());
  ASSERT_TRUE(tm_->Commit(*t2).ok());
  auto reader = tm_->Begin();
  std::vector<uint8_t> read;
  ASSERT_TRUE(tm_->ReadRecord(*reader, 1, 0, &read).ok());
  EXPECT_EQ(read, Record(0x00));
  ASSERT_TRUE(tm_->ReadRecord(*reader, 1, 1, &read).ok());
  EXPECT_EQ(read, Record(0x92));
}

TEST_F(RecordTxnTest, SoleModifierStealUsesParity) {
  auto txn = tm_->Begin();
  ASSERT_TRUE(tm_->WriteRecord(*txn, 2, 0, Record(0xA1)).ok());
  ASSERT_TRUE(tm_->WriteRecord(*txn, 2, 3, Record(0xA2)).ok());
  Frame* frame = tm_->pool()->Lookup(2);
  ASSERT_TRUE(tm_->pool()->PropagateFrame(frame).ok());
  EXPECT_EQ(tm_->stats().before_images_avoided, 1u);
  EXPECT_EQ(tm_->stats().before_images_logged, 0u);
  ASSERT_TRUE(tm_->Abort(*txn).ok());
  auto reader = tm_->Begin();
  std::vector<uint8_t> read;
  ASSERT_TRUE(tm_->ReadRecord(*reader, 2, 0, &read).ok());
  EXPECT_EQ(read, Record(0x00));
}

TEST_F(RecordTxnTest, RecordLocksAllowDisjointSlotsBlockSameSlot) {
  auto t1 = tm_->Begin();
  auto t2 = tm_->Begin();
  ASSERT_TRUE(tm_->WriteRecord(*t1, 1, 0, Record(0xB1)).ok());
  EXPECT_TRUE(tm_->WriteRecord(*t2, 1, 0, Record(0xB2)).IsBusy());
  EXPECT_TRUE(tm_->WriteRecord(*t2, 1, 1, Record(0xB3)).ok());
}

TEST_F(RecordTxnTest, SelfOverwriteUndoesToOriginal) {
  auto setup = tm_->Begin();
  ASSERT_TRUE(tm_->WriteRecord(*setup, 3, 1, Record(0x11)).ok());
  ASSERT_TRUE(tm_->Commit(*setup).ok());
  auto txn = tm_->Begin();
  ASSERT_TRUE(tm_->WriteRecord(*txn, 3, 1, Record(0x22)).ok());
  ASSERT_TRUE(tm_->WriteRecord(*txn, 3, 1, Record(0x33)).ok());
  ASSERT_TRUE(tm_->Abort(*txn).ok());
  auto reader = tm_->Begin();
  std::vector<uint8_t> read;
  ASSERT_TRUE(tm_->ReadRecord(*reader, 3, 1, &read).ok());
  EXPECT_EQ(read, Record(0x11));
}


TEST_F(TxnManagerTest, DeadlockDetectedAndVictimAbortable) {
  Build(TxnConfig{});
  auto t1 = tm_->Begin();
  auto t2 = tm_->Begin();
  ASSERT_TRUE(tm_->WritePage(*t1, 0, UserBytes(0x01)).ok());
  ASSERT_TRUE(tm_->WritePage(*t2, 4, UserBytes(0x02)).ok());
  EXPECT_TRUE(tm_->WritePage(*t1, 4, UserBytes(0x03)).IsBusy());
  EXPECT_FALSE(tm_->WouldDeadlock(*t1));
  EXPECT_TRUE(tm_->WritePage(*t2, 0, UserBytes(0x04)).IsBusy());
  EXPECT_TRUE(tm_->WouldDeadlock(*t1));
  EXPECT_TRUE(tm_->WouldDeadlock(*t2));
  // Victim aborts; the survivor proceeds.
  ASSERT_TRUE(tm_->Abort(*t2).ok());
  EXPECT_TRUE(tm_->WritePage(*t1, 4, UserBytes(0x03)).ok());
  ASSERT_TRUE(tm_->Commit(*t1).ok());
  EXPECT_EQ(DiskUserBytes(0), UserBytes(0x01));
  EXPECT_EQ(DiskUserBytes(4), UserBytes(0x03));
}

TEST_F(TxnManagerTest, NoStealPolicyBlocksUncommittedEviction) {
  TxnConfig config;
  Build(config, /*buffer_capacity=*/2);
  // Override the pool policy through options: rebuild with no-steal.
  DiskArray::Options array_options;
  array_options.data_pages_per_group = 4;
  array_options.parity_copies = 2;
  array_options.min_data_pages = 48;
  array_options.page_size = 128;
  auto array = DiskArray::Create(array_options);
  ASSERT_TRUE(array.ok());
  array_ = std::move(array).value();
  parity_ = std::make_unique<TwinParityManager>(array_.get());
  ASSERT_TRUE(parity_->FormatArray().ok());
  log_ = std::make_unique<LogManager>(LogManager::Options{});
  locks_ = std::make_unique<LockManager>();
  BufferPool::Options pool_options;
  pool_options.capacity = 2;
  pool_options.page_size = 128;
  pool_options.allow_steal = false;
  tm_ = std::make_unique<TransactionManager>(config, parity_.get(),
                                             log_.get(), locks_.get(),
                                             pool_options);
  auto txn = tm_->Begin();
  ASSERT_TRUE(tm_->WritePage(*txn, 0, UserBytes(0x11)).ok());
  ASSERT_TRUE(tm_->WritePage(*txn, 4, UserBytes(0x12)).ok());
  // Both frames hold uncommitted data; fetching a third page cannot evict.
  std::vector<uint8_t> scratch;
  EXPECT_TRUE(tm_->ReadPage(*txn, 8, &scratch).IsBusy());
  // Commit force-propagates and unclogs the pool.
  ASSERT_TRUE(tm_->Commit(*txn).ok());
  EXPECT_TRUE(tm_->ReadPage(tm_->Begin().value(), 8, &scratch).ok());
}

TEST_F(TxnManagerTest, CommittedDataEvictionIsPlainWrite) {
  TxnConfig config;
  config.force = false;
  Build(config, /*buffer_capacity=*/2);
  auto txn = tm_->Begin();
  ASSERT_TRUE(tm_->WritePage(*txn, 0, UserBytes(0x21)).ok());
  ASSERT_TRUE(tm_->Commit(*txn).ok());
  EXPECT_EQ(DiskUserBytes(0), UserBytes(0x00));  // Still buffered.
  parity_->ResetStats();
  // Evict it by touching other pages.
  auto reader = tm_->Begin();
  std::vector<uint8_t> scratch;
  ASSERT_TRUE(tm_->ReadPage(*reader, 8, &scratch).ok());
  ASSERT_TRUE(tm_->ReadPage(*reader, 12, &scratch).ok());
  EXPECT_EQ(DiskUserBytes(0), UserBytes(0x21));
  EXPECT_EQ(parity_->stats().plain, 1u);  // No undo machinery involved.
  EXPECT_EQ(tm_->stats().before_images_logged, 0u);
}

TEST_F(TxnManagerTest, ChainLinksRecordedOnDisk) {
  Build(TxnConfig{});
  auto txn = tm_->Begin();
  ASSERT_TRUE(tm_->WritePage(*txn, 0, UserBytes(0x31)).ok());
  ASSERT_TRUE(tm_->WritePage(*txn, 4, UserBytes(0x32)).ok());
  ASSERT_TRUE(tm_->WritePage(*txn, 8, UserBytes(0x33)).ok());
  for (const PageId page : {0u, 4u, 8u}) {
    Frame* frame = tm_->pool()->Lookup(page);
    ASSERT_TRUE(tm_->pool()->PropagateFrame(frame).ok());
  }
  // Chain: 8 -> 4 -> 0 -> invalid, stamped with the owning transaction.
  PageImage image;
  ASSERT_TRUE(array_->ReadData(8, &image).ok());
  DataPageMeta meta = LoadDataMeta(image.payload);
  EXPECT_EQ(meta.txn_id, *txn);
  EXPECT_EQ(meta.chain_prev, 4u);
  ASSERT_TRUE(array_->ReadData(4, &image).ok());
  meta = LoadDataMeta(image.payload);
  EXPECT_EQ(meta.chain_prev, 0u);
  ASSERT_TRUE(array_->ReadData(0, &image).ok());
  meta = LoadDataMeta(image.payload);
  EXPECT_EQ(meta.chain_prev, kInvalidPageId);
}

TEST_F(TxnManagerTest, AccessorsReportGeometry) {
  TxnConfig config;
  config.logging_mode = LoggingMode::kRecordLogging;
  config.record_size = 20;
  Build(config);
  EXPECT_EQ(tm_->user_page_size(), 128u - kDataRegionOffset);
  EXPECT_EQ(tm_->records_per_page(), (128u - kDataRegionOffset) / 20);
}

TEST_F(TxnManagerTest, BumpNextTxnIdNeverLowers) {
  Build(TxnConfig{});
  auto t1 = tm_->Begin();
  tm_->BumpNextTxnId(2);  // Lower than current: no effect.
  auto t2 = tm_->Begin();
  EXPECT_GT(*t2, *t1);
  tm_->BumpNextTxnId(1000);
  auto t3 = tm_->Begin();
  EXPECT_GE(*t3, 1000u);
}

TEST_F(RecordTxnTest, InterleavedSharedPageAbortAfterEviction) {
  // t1 and t2 share page 1; the frame is stolen, t1 re-modifies, the frame
  // is stolen again, then t1 aborts while t2 commits. The reconciliation
  // path must keep t2's slot and roll back every t1 slot.
  auto t1 = tm_->Begin();
  auto t2 = tm_->Begin();
  ASSERT_TRUE(tm_->WriteRecord(*t1, 1, 0, Record(0x41)).ok());
  ASSERT_TRUE(tm_->WriteRecord(*t2, 1, 1, Record(0x42)).ok());
  Frame* frame = tm_->pool()->Lookup(1);
  ASSERT_TRUE(tm_->pool()->PropagateFrame(frame).ok());
  ASSERT_TRUE(tm_->WriteRecord(*t1, 1, 2, Record(0x43)).ok());
  frame = tm_->pool()->Lookup(1);
  ASSERT_TRUE(tm_->pool()->PropagateFrame(frame).ok());

  ASSERT_TRUE(tm_->Abort(*t1).ok());
  std::vector<uint8_t> read;
  ASSERT_TRUE(tm_->ReadRecord(*t2, 1, 1, &read).ok());
  EXPECT_EQ(read, Record(0x42));
  ASSERT_TRUE(tm_->Commit(*t2).ok());

  auto reader = tm_->Begin();
  ASSERT_TRUE(tm_->ReadRecord(*reader, 1, 0, &read).ok());
  EXPECT_EQ(read, Record(0x00));
  ASSERT_TRUE(tm_->ReadRecord(*reader, 1, 2, &read).ok());
  EXPECT_EQ(read, Record(0x00));
  ASSERT_TRUE(tm_->ReadRecord(*reader, 1, 1, &read).ok());
  EXPECT_EQ(read, Record(0x42));
  auto ok = parity_->VerifyGroupParity(0);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(RecordTxnTest, AbortWithCoveredPageRewrittenByLoggedSteal) {
  // Regression for the covered-page stamp bug: t1's unlogged steal covers
  // page 2; a later multi-modifier steal of the same page must not destroy
  // the parity-undo stamp.
  auto t1 = tm_->Begin();
  ASSERT_TRUE(tm_->WriteRecord(*t1, 2, 0, Record(0x51)).ok());
  Frame* frame = tm_->pool()->Lookup(2);
  ASSERT_TRUE(tm_->pool()->PropagateFrame(frame).ok());  // Unlogged.
  auto t2 = tm_->Begin();
  ASSERT_TRUE(tm_->WriteRecord(*t1, 2, 1, Record(0x52)).ok());
  ASSERT_TRUE(tm_->WriteRecord(*t2, 2, 2, Record(0x53)).ok());
  frame = tm_->pool()->Lookup(2);
  ASSERT_TRUE(tm_->pool()->PropagateFrame(frame).ok());  // Logged steal.

  ASSERT_TRUE(tm_->Abort(*t1).ok());
  ASSERT_TRUE(tm_->Commit(*t2).ok());
  auto reader = tm_->Begin();
  std::vector<uint8_t> read;
  ASSERT_TRUE(tm_->ReadRecord(*reader, 2, 0, &read).ok());
  EXPECT_EQ(read, Record(0x00));
  ASSERT_TRUE(tm_->ReadRecord(*reader, 2, 1, &read).ok());
  EXPECT_EQ(read, Record(0x00));
  ASSERT_TRUE(tm_->ReadRecord(*reader, 2, 2, &read).ok());
  EXPECT_EQ(read, Record(0x53));
  auto ok = parity_->VerifyGroupParity(0);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

}  // namespace
}  // namespace rda
