#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/database.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "storage/page.h"

namespace rda {
namespace {

using obs::EventKind;
using obs::GroupFigState;
using obs::Subsystem;
using obs::TraceEvent;

// --- registry ---

TEST(MetricsRegistryTest, CountersAndGaugesAreStableAndSnapshotted) {
  obs::MetricsRegistry registry;
  obs::Counter* reads = registry.GetCounter("storage.reads");
  obs::Counter* writes = registry.GetCounter("storage.writes");
  EXPECT_EQ(reads, registry.GetCounter("storage.reads"));  // Stable pointer.
  reads->Add(3);
  writes->Add();
  registry.GetGauge("sim.committed")->Set(-7);

  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("storage.reads"), 3u);
  EXPECT_EQ(snapshot.CounterValue("storage.writes"), 1u);
  EXPECT_EQ(snapshot.CounterValue("no.such.metric"), 0u);
  EXPECT_EQ(snapshot.CounterSum("storage."), 4u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].first, "sim.committed");
  EXPECT_EQ(snapshot.gauges[0].second, -7);

  registry.ResetAll();
  EXPECT_EQ(registry.Snapshot().CounterSum(""), 0u);
  EXPECT_EQ(reads->value(), 0u);  // Reset in place; pointer still valid.
}

TEST(MetricsRegistryTest, NullSafeHelpersAreNoOps) {
  obs::Inc(nullptr);
  obs::Inc(nullptr, 42);
  obs::Observe(nullptr, 1.0);
  obs::Emit(nullptr, TraceEvent{});
  EXPECT_EQ(obs::GetCounter(nullptr, "x"), nullptr);
  EXPECT_EQ(obs::GetGauge(nullptr, "x"), nullptr);
  EXPECT_EQ(obs::GetHistogram(nullptr, "x", {1.0}), nullptr);
}

TEST(HistogramTest, BucketingCountsAndOverflow) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("txn.transfers", {1, 2, 4});
  ASSERT_EQ(h->buckets().size(), 4u);  // 3 bounds + overflow.
  h->Observe(0.5);  // le_1
  h->Observe(1.0);  // le_1 (inclusive upper bound)
  h->Observe(1.5);  // le_2
  h->Observe(4.0);  // le_4
  h->Observe(9.0);  // overflow
  EXPECT_EQ(h->buckets()[0], 2u);
  EXPECT_EQ(h->buckets()[1], 1u);
  EXPECT_EQ(h->buckets()[2], 1u);
  EXPECT_EQ(h->buckets()[3], 1u);
  EXPECT_EQ(h->count(), 5u);
  EXPECT_DOUBLE_EQ(h->sum(), 16.0);
  EXPECT_DOUBLE_EQ(h->max(), 9.0);

  // Later Get with different bounds returns the same histogram.
  EXPECT_EQ(registry.GetHistogram("txn.transfers", {100}), h);
  h->Reset();
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->buckets()[0], 0u);
}

// --- quantile estimation ---

TEST(QuantileTest, InterpolatesWithinBuckets) {
  // 30 observations spread 10/10/10 over [0,10], (10,20], (20,30].
  const std::vector<double> bounds = {10, 20, 30};
  const std::vector<uint64_t> buckets = {10, 10, 10, 0};
  EXPECT_DOUBLE_EQ(obs::QuantileFromBuckets(bounds, buckets, 0.0, 28), 0.0);
  EXPECT_DOUBLE_EQ(obs::QuantileFromBuckets(bounds, buckets, 0.5, 28), 15.0);
  // target 27 lands 7/10 into the third bucket, whose upper edge is the
  // observed max (28), not the raw bound: 20 + 0.7 * 8.
  EXPECT_DOUBLE_EQ(obs::QuantileFromBuckets(bounds, buckets, 0.9, 28), 25.6);
  // q=1 is the observed max, never the (larger) bucket bound.
  EXPECT_DOUBLE_EQ(obs::QuantileFromBuckets(bounds, buckets, 1.0, 28), 28.0);
  // q outside [0,1] clamps instead of extrapolating.
  EXPECT_DOUBLE_EQ(obs::QuantileFromBuckets(bounds, buckets, -1.0, 28), 0.0);
  EXPECT_DOUBLE_EQ(obs::QuantileFromBuckets(bounds, buckets, 2.0, 28), 28.0);
}

TEST(QuantileTest, OverflowBucketIsBoundedByObservedMax) {
  // All 4 observations above the last bound; the observed max (100) is the
  // upper edge, not +inf.
  const std::vector<double> bounds = {10};
  const std::vector<uint64_t> buckets = {0, 4};
  EXPECT_DOUBLE_EQ(obs::QuantileFromBuckets(bounds, buckets, 0.5, 100), 55.0);
  EXPECT_DOUBLE_EQ(obs::QuantileFromBuckets(bounds, buckets, 1.0, 100),
                   100.0);
}

TEST(QuantileTest, ObservedMaxBelowLastFiniteBoundClampsTheEdge) {
  // 8 observations, all in (10, 100], but none larger than 40: the report
  // must never claim a latency above 40.
  const std::vector<double> bounds = {10, 100};
  const std::vector<uint64_t> buckets = {0, 8, 0};
  EXPECT_DOUBLE_EQ(obs::QuantileFromBuckets(bounds, buckets, 1.0, 40), 40.0);
  // Interpolation inside the clamped bucket uses the honest edge too:
  // p50 = 10 + 0.5 * (40 - 10).
  EXPECT_DOUBLE_EQ(obs::QuantileFromBuckets(bounds, buckets, 0.5, 40), 25.0);
  // A degenerate max below the bucket's lower edge cannot drive the
  // estimate backwards below the lower bound.
  EXPECT_DOUBLE_EQ(obs::QuantileFromBuckets(bounds, buckets, 1.0, 5), 10.0);
}

TEST(QuantileTest, SingleObservationIsItsOwnQuantile) {
  // One observation of 3 with bounds far above it: every quantile is 3,
  // not an interpolated point inside [0, 10].
  const std::vector<double> bounds = {10, 100};
  const std::vector<uint64_t> buckets = {1, 0, 0};
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(obs::QuantileFromBuckets(bounds, buckets, q, 3), 3.0)
        << "q=" << q;
  }
  // Through the Histogram member too (snapshots its own max).
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("one.obs", {10, 100});
  h->Observe(3);
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 3.0);
}

TEST(QuantileTest, EdgeQuantilesAfterManyObservations) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("edge.q", {10, 100, 1000});
  for (int i = 1; i <= 50; ++i) {
    h->Observe(i * 2);  // 2..100: max 100 == the second bound exactly.
  }
  EXPECT_DOUBLE_EQ(h->Quantile(0.0), 0.0);   // Lower edge of first bucket.
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 100.0); // Exactly the observed max.
  EXPECT_LE(h->Quantile(0.99), 100.0);
}

TEST(QuantileTest, EmptyHistogramIsZeroAndMemberMatchesFree) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("txn.q", {10, 20});
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 0.0);  // Empty.
  h->Observe(5);
  h->Observe(15);
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  const auto* snap = snapshot.FindHistogram("txn.q");
  ASSERT_NE(snap, nullptr);
  for (const double q : {0.25, 0.5, 0.95}) {
    EXPECT_DOUBLE_EQ(h->Quantile(q), obs::Quantile(*snap, q)) << q;
  }
  EXPECT_EQ(snapshot.FindHistogram("no.such"), nullptr);
}

// --- span rings ---

TEST(SpanRingTest, PushSnapshotAndDropCounting) {
  obs::ThreadSpanRing ring(3, 4);
  for (int i = 0; i < 6; ++i) {
    obs::SpanRecord record;
    record.start_ns = static_cast<uint64_t>(i) * 100;
    record.duration_ns = 10;
    record.detail = i;
    record.kind = obs::SpanKind::kWalFlush;
    ring.Push(record);
  }
  EXPECT_EQ(ring.thread_index(), 3u);
  EXPECT_EQ(ring.recorded(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);  // Capacity 4: the two oldest overwritten.
  const std::vector<obs::SpanRecord> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].detail, static_cast<int64_t>(2 + i));  // Oldest-first.
    EXPECT_EQ(spans[i].kind, obs::SpanKind::kWalFlush);
  }
}

TEST(SpanCollectorTest, ScopedSpanRecordsNestingDepth) {
  obs::SpanCollector collector(64);
  {
    obs::ScopedSpan outer(&collector, obs::SpanKind::kTxnCommit, nullptr, 7);
    {
      obs::ScopedSpan inner(&collector, obs::SpanKind::kWalFlush);
    }
  }
  const auto threads = collector.SnapshotAll();
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0].spans.size(), 2u);
  // The inner span completes (and is pushed) first.
  EXPECT_EQ(threads[0].spans[0].kind, obs::SpanKind::kWalFlush);
  EXPECT_EQ(threads[0].spans[0].depth, 1u);
  EXPECT_EQ(threads[0].spans[1].kind, obs::SpanKind::kTxnCommit);
  EXPECT_EQ(threads[0].spans[1].depth, 0u);
  EXPECT_EQ(threads[0].spans[1].detail, 7);
  // The outer interval contains the inner one.
  EXPECT_LE(threads[0].spans[1].start_ns, threads[0].spans[0].start_ns);
  EXPECT_GE(threads[0].spans[1].duration_ns, threads[0].spans[0].duration_ns);
  EXPECT_EQ(collector.TotalRecorded(), 2u);
  EXPECT_EQ(collector.TotalDropped(), 0u);
}

TEST(SpanCollectorTest, ScopedSpanFeedsHistogramAndNullIsNoOp) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("txn.span_us", {1000});
  {
    obs::ScopedSpan span(nullptr, obs::SpanKind::kTxnCommit, h);
  }
  EXPECT_EQ(h->count(), 1u);  // Histogram-only span still measures.
  {
    obs::ScopedSpan span(nullptr, obs::SpanKind::kTxnCommit);  // Fully null.
  }
  EXPECT_EQ(h->count(), 1u);
}

TEST(SpanCollectorTest, RecordIntervalKeepsGivenTimestamps) {
  obs::SpanCollector collector(8);
  const auto start = std::chrono::steady_clock::now();
  const auto end = start + std::chrono::milliseconds(5);
  collector.RecordInterval(obs::SpanKind::kRecoveryPhase, start, end, 3);
  const auto threads = collector.SnapshotAll();
  ASSERT_EQ(threads.size(), 1u);
  ASSERT_EQ(threads[0].spans.size(), 1u);
  EXPECT_EQ(threads[0].spans[0].duration_ns, 5'000'000u);
  EXPECT_EQ(threads[0].spans[0].detail, 3);
}

// --- flight recorder ---

TEST(FlightRecorderTest, TriggerCapturesRecentSpansAndTrace) {
  obs::SpanCollector collector(16);
  obs::TraceBuffer trace(8);
  obs::FlightRecorder flight(&collector, &trace, 4);
  for (int i = 0; i < 6; ++i) {
    obs::ScopedSpan span(&collector, obs::SpanKind::kParityPropagate, nullptr,
                         i);
  }
  TraceEvent event;
  event.subsystem = Subsystem::kStorage;
  trace.Record(event);

  EXPECT_EQ(flight.trigger_count(), 0u);
  obs::TriggerFlight(&flight, "disk 2 escalated");
  EXPECT_EQ(flight.trigger_count(), 1u);
  EXPECT_EQ(flight.last_reason(), "disk 2 escalated");
  const std::string dump = flight.last_dump();
  EXPECT_NE(dump.find("\"reason\":\"disk 2 escalated\""), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("parity.propagate"), std::string::npos) << dump;
  // last_n = 4: only the most recent spans survive; detail 0 and 1 are cut.
  EXPECT_NE(dump.find("\"detail\":5"), std::string::npos) << dump;
  EXPECT_EQ(dump.find("\"detail\":1}"), std::string::npos) << dump;
  obs::TriggerFlight(nullptr, "no-op");  // Null-safe.
}

// --- trace buffer ---

TEST(TraceBufferTest, RingWrapsAndCountsDropped) {
  obs::TraceBuffer trace(4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent event;
    event.detail = i;
    trace.Record(event);
  }
  EXPECT_EQ(trace.capacity(), 4u);
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.total_recorded(), 10u);
  EXPECT_EQ(trace.dropped(), 6u);
  const std::vector<TraceEvent> events = trace.Events();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].detail, static_cast<int64_t>(6 + i));  // Oldest kept.
    if (i > 0) {
      EXPECT_GT(events[i].tick, events[i - 1].tick);  // Chronological.
    }
  }
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.total_recorded(), 0u);
}

// --- exporters ---

// Minimal scanner: the numeric value following `"key":` in `json`.
int64_t JsonNumber(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " not in " << json;
  if (at == std::string::npos) {
    return -1;
  }
  return std::stoll(json.substr(at + needle.size()));
}

TEST(ExportTest, MetricsJsonRoundTripsValues) {
  obs::MetricsRegistry registry;
  registry.GetCounter("wal.records")->Add(12);
  registry.GetGauge("sim.committed")->Set(34);
  obs::Histogram* h = registry.GetHistogram("txn.t", {2});
  h->Observe(1);
  h->Observe(5);

  const std::string json = obs::MetricsToJson(registry.Snapshot());
  EXPECT_EQ(JsonNumber(json, "wal.records"), 12);
  EXPECT_EQ(JsonNumber(json, "sim.committed"), 34);
  EXPECT_EQ(JsonNumber(json, "count"), 2);
  EXPECT_NE(json.find("\"bounds\":[2]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\":[1,1]"), std::string::npos) << json;

  const std::string csv = obs::MetricsToCsv(registry.Snapshot());
  EXPECT_NE(csv.find("counter,wal.records,12"), std::string::npos) << csv;
  EXPECT_NE(csv.find("gauge,sim.committed,34"), std::string::npos) << csv;
  EXPECT_NE(csv.find("histogram,txn.t.count,2"), std::string::npos) << csv;
}

TEST(ExportTest, TraceJsonNamesStatesAndCountsDrops) {
  obs::TraceBuffer trace(2);
  TraceEvent twin;
  twin.subsystem = Subsystem::kParity;
  twin.kind = EventKind::kTwinTransition;
  twin.group = 3;
  twin.detail = 1;
  twin.from_state = static_cast<uint8_t>(ParityState::kObsolete);
  twin.to_state = static_cast<uint8_t>(ParityState::kWorking);
  trace.Record(twin);
  TraceEvent group;
  group.subsystem = Subsystem::kParity;
  group.kind = EventKind::kGroupTransition;
  group.from_state = static_cast<uint8_t>(GroupFigState::kClean);
  group.to_state = static_cast<uint8_t>(GroupFigState::kDirty);
  trace.Record(group);

  const std::string json = obs::TraceToJson(trace);
  EXPECT_EQ(JsonNumber(json, "total_recorded"), 2);
  EXPECT_EQ(JsonNumber(json, "dropped"), 0);
  EXPECT_NE(json.find("twin_transition"), std::string::npos) << json;
  EXPECT_NE(json.find("\"from\":\"obsolete\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"to\":\"working\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"from\":\"clean\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"to\":\"dirty\""), std::string::npos) << json;
}

// --- engine wiring ---

DatabaseOptions SmallDb() {
  DatabaseOptions options;
  options.array.data_pages_per_group = 4;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 32;
  options.array.page_size = 256;
  options.buffer.capacity = 16;
  options.txn.force = true;
  options.txn.rda_undo = true;
  return options;
}

std::vector<TraceEvent> ParityEvents(Database* db, EventKind kind) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : db->obs()->trace()->Events()) {
    if (event.subsystem == Subsystem::kParity && event.kind == kind) {
      out.push_back(event);
    }
  }
  return out;
}

TEST(ObsWiringTest, Figure3GroupTransitionsTracedThroughCommit) {
  auto db = Database::Open(SmallDb());
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  ASSERT_TRUE(txn.ok());
  std::vector<uint8_t> bytes((*db)->user_page_size(), 0x11);
  ASSERT_TRUE((*db)->WritePage(*txn, 0, bytes).ok());
  ASSERT_TRUE((*db)->Commit(*txn).ok());

  // FORCE commit: the steal dirties group 0 (CLEAN -> DIRTY), finalization
  // cleans it (DIRTY -> CLEAN) — Figure 3 exactly.
  const auto transitions = ParityEvents(db->get(),
                                        EventKind::kGroupTransition);
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0].from_state,
            static_cast<uint8_t>(GroupFigState::kClean));
  EXPECT_EQ(transitions[0].to_state,
            static_cast<uint8_t>(GroupFigState::kDirty));
  EXPECT_EQ(transitions[0].group, 0u);
  EXPECT_EQ(transitions[0].txn, *txn);
  EXPECT_EQ(transitions[1].from_state,
            static_cast<uint8_t>(GroupFigState::kDirty));
  EXPECT_EQ(transitions[1].to_state,
            static_cast<uint8_t>(GroupFigState::kClean));
}

TEST(ObsWiringTest, Figure8TwinTransitionsTracedThroughCommit) {
  auto db = Database::Open(SmallDb());
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  ASSERT_TRUE(txn.ok());
  std::vector<uint8_t> bytes((*db)->user_page_size(), 0x22);
  ASSERT_TRUE((*db)->WritePage(*txn, 0, bytes).ok());
  ASSERT_TRUE((*db)->Commit(*txn).ok());

  // obsolete -> working (unlogged steal), working -> committed +
  // committed -> obsolete (finalization).
  const auto twins = ParityEvents(db->get(), EventKind::kTwinTransition);
  ASSERT_EQ(twins.size(), 3u);
  EXPECT_EQ(twins[0].from_state, static_cast<uint8_t>(ParityState::kObsolete));
  EXPECT_EQ(twins[0].to_state, static_cast<uint8_t>(ParityState::kWorking));
  EXPECT_EQ(twins[1].from_state, static_cast<uint8_t>(ParityState::kWorking));
  EXPECT_EQ(twins[1].to_state, static_cast<uint8_t>(ParityState::kCommitted));
  EXPECT_EQ(twins[2].from_state,
            static_cast<uint8_t>(ParityState::kCommitted));
  EXPECT_EQ(twins[2].to_state, static_cast<uint8_t>(ParityState::kObsolete));
}

TEST(ObsWiringTest, CountersFollowTheWorkload) {
  auto db = Database::Open(SmallDb());
  ASSERT_TRUE(db.ok());
  std::vector<uint8_t> bytes((*db)->user_page_size(), 0x33);
  for (int i = 0; i < 3; ++i) {
    auto txn = (*db)->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*db)->WritePage(*txn, static_cast<PageId>(i * 4), bytes).ok());
    ASSERT_TRUE((*db)->Commit(*txn).ok());
  }
  const obs::MetricsSnapshot snapshot = (*db)->SnapshotMetrics();
  EXPECT_EQ(snapshot.CounterValue("txn.begun"), 3u);
  EXPECT_EQ(snapshot.CounterValue("txn.committed"), 3u);
  EXPECT_EQ(snapshot.CounterValue("parity.unlogged_first"), 3u);
  EXPECT_EQ(snapshot.CounterValue("parity.commits_finalized"), 3u);
  // Obs counters mirror the engine's own I/O accounting.
  EXPECT_EQ(snapshot.CounterValue("storage.reads") +
                snapshot.CounterValue("storage.writes"),
            (*db)->array()->counters().total());
  EXPECT_EQ(snapshot.CounterValue("storage.xor_computations"),
            (*db)->array()->counters().xor_computations);
  // BOT + chain-head + after-image + commit per transaction.
  EXPECT_EQ(snapshot.CounterValue("wal.records"), 3u * 4u);
  // Per-disk counters partition the array totals.
  EXPECT_EQ(snapshot.CounterSum("storage.disk"),
            (*db)->array()->counters().total());
  // Every commit observed into the transfer and latency histograms.
  const auto* transfers = snapshot.FindHistogram("txn.transfers_per_commit");
  ASSERT_NE(transfers, nullptr);
  EXPECT_EQ(transfers->count, 3u);
  const auto* commit_us = snapshot.FindHistogram("txn.commit_us");
  ASSERT_NE(commit_us, nullptr);
  EXPECT_EQ(commit_us->count, 3u);
  // FORCE propagation drives the parity latency histogram too.
  const auto* propagate = snapshot.FindHistogram("parity.propagate_us");
  ASSERT_NE(propagate, nullptr);
  EXPECT_GT(propagate->count, 0u);
}

TEST(ObsWiringTest, PerTxnTransferAttributionMatchesEngineTotals) {
  auto db = Database::Open(SmallDb());
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  ASSERT_TRUE(txn.ok());
  std::vector<uint8_t> bytes((*db)->user_page_size(), 0x44);
  ASSERT_TRUE((*db)->WritePage(*txn, 0, bytes).ok());
  ASSERT_TRUE((*db)->WritePage(*txn, 5, bytes).ok());
  ASSERT_TRUE((*db)->Commit(*txn).ok());

  // A single transaction drove all I/O, so its attributed transfers are the
  // engine totals; the commit event carries the same number.
  bool found = false;
  for (const TraceEvent& event : (*db)->obs()->trace()->Events()) {
    if (event.kind == EventKind::kTxnCommit && event.txn == *txn) {
      EXPECT_EQ(static_cast<uint64_t>(event.value),
                (*db)->TotalPageTransfers());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsWiringTest, RecoveryPhaseBreakdownCoversAllPhases) {
  auto db = Database::Open(SmallDb());
  ASSERT_TRUE(db.ok());
  std::vector<uint8_t> bytes((*db)->user_page_size(), 0x55);

  // One winner, one loser with a stolen page.
  auto winner = (*db)->Begin();
  ASSERT_TRUE(winner.ok());
  ASSERT_TRUE((*db)->WritePage(*winner, 0, bytes).ok());
  ASSERT_TRUE((*db)->Commit(*winner).ok());
  auto loser = (*db)->Begin();
  ASSERT_TRUE(loser.ok());
  ASSERT_TRUE((*db)->WritePage(*loser, 4, bytes).ok());
  Frame* frame = (*db)->txn_manager()->pool()->Lookup(4);
  ASSERT_NE(frame, nullptr);
  ASSERT_TRUE((*db)->txn_manager()->pool()->PropagateFrame(frame).ok());

  const uint64_t before = (*db)->TotalPageTransfers();
  (*db)->Crash();
  auto report = (*db)->Recover();
  ASSERT_TRUE(report.ok());
  const uint64_t spent = (*db)->TotalPageTransfers() - before;

  const obs::RecoveryPhase expected[] = {
      obs::RecoveryPhase::kDirectoryRebuild, obs::RecoveryPhase::kAnalysis,
      obs::RecoveryPhase::kRollForward,      obs::RecoveryPhase::kChainAudit,
      obs::RecoveryPhase::kLoggedUndo,       obs::RecoveryPhase::kParityUndo,
      obs::RecoveryPhase::kRedo,             obs::RecoveryPhase::kLoserResolution,
  };
  ASSERT_EQ(report->phases.size(), 8u);
  uint64_t phase_transfers = 0;
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(report->phases[i].phase, expected[i]) << "phase " << i;
    phase_transfers += report->phases[i].page_transfers;
  }
  EXPECT_EQ(phase_transfers, spent);  // The phases account for all the I/O.
  EXPECT_GT(report->phases[0].page_transfers, 0u);  // Directory scan (S/N).
  EXPECT_GT((*db)->SnapshotMetrics().CounterValue(
                "recovery.phase.parity_undo.runs"),
            0u);
}

TEST(ObsWiringTest, DisabledObsIsNullAndEngineStillWorks) {
  DatabaseOptions options = SmallDb();
  options.obs.enable_metrics = false;
  options.obs.enable_trace = false;
  options.obs.enable_spans = false;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->obs(), nullptr);

  auto txn = (*db)->Begin();
  ASSERT_TRUE(txn.ok());
  std::vector<uint8_t> bytes((*db)->user_page_size(), 0x66);
  ASSERT_TRUE((*db)->WritePage(*txn, 0, bytes).ok());
  ASSERT_TRUE((*db)->Commit(*txn).ok());

  EXPECT_TRUE((*db)->SnapshotMetrics().counters.empty());
  EXPECT_TRUE((*db)->DumpTrace("/tmp/never-written").IsFailedPrecondition());
  EXPECT_TRUE((*db)->DumpMetrics("/tmp/never-written")
                  .IsFailedPrecondition());
  EXPECT_TRUE((*db)->DumpChromeTrace("/tmp/never-written")
                  .IsFailedPrecondition());

  // The phase breakdown is engine state, not observability: still filled.
  (*db)->Crash();
  auto report = (*db)->Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->phases.size(), 8u);
}

TEST(ObsWiringTest, TraceOnlyModeHasNoRegistry) {
  DatabaseOptions options = SmallDb();
  options.obs.enable_metrics = false;
  options.obs.trace_capacity = 8;
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  ASSERT_NE((*db)->obs(), nullptr);
  EXPECT_EQ((*db)->obs()->metrics(), nullptr);
  ASSERT_NE((*db)->obs()->trace(), nullptr);

  auto txn = (*db)->Begin();
  ASSERT_TRUE(txn.ok());
  std::vector<uint8_t> bytes((*db)->user_page_size(), 0x77);
  ASSERT_TRUE((*db)->WritePage(*txn, 0, bytes).ok());
  ASSERT_TRUE((*db)->Commit(*txn).ok());
  EXPECT_GT((*db)->obs()->trace()->total_recorded(), 0u);
  EXPECT_TRUE((*db)->SnapshotMetrics().counters.empty());
}

TEST(ObsWiringTest, SpansCoverCommitAndChromeTraceExports) {
  auto db = Database::Open(SmallDb());
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->Begin();
  ASSERT_TRUE(txn.ok());
  std::vector<uint8_t> bytes((*db)->user_page_size(), 0x88);
  ASSERT_TRUE((*db)->WritePage(*txn, 0, bytes).ok());
  ASSERT_TRUE((*db)->Commit(*txn).ok());

  const obs::SpanCollector* spans = (*db)->obs()->spans();
  ASSERT_NE(spans, nullptr);
  EXPECT_GT(spans->TotalRecorded(), 0u);
  bool saw_commit = false;
  bool saw_nested = false;
  for (const auto& thread : spans->SnapshotAll()) {
    for (const obs::SpanRecord& span : thread.spans) {
      saw_commit |= span.kind == obs::SpanKind::kTxnCommit;
      saw_nested |= span.depth > 0;
    }
  }
  EXPECT_TRUE(saw_commit);
  EXPECT_TRUE(saw_nested);  // Force/WAL/parity segments nest under commit.

  const std::string json =
      obs::ChromeTraceJson(spans, (*db)->obs()->trace());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // Duration spans.
  EXPECT_NE(json.find("txn.commit"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // Trace instants.

  const std::string path =
      testing::TempDir() + "/obs_chrome_trace.json";
  ASSERT_TRUE((*db)->DumpChromeTrace(path).ok());
}

TEST(ObsWiringTest, InjectedRecoveryCrashTripsFlightRecorder) {
  auto db = Database::Open(SmallDb());
  ASSERT_TRUE(db.ok());
  std::vector<uint8_t> bytes((*db)->user_page_size(), 0x99);
  auto loser = (*db)->Begin();
  ASSERT_TRUE(loser.ok());
  ASSERT_TRUE((*db)->WritePage(*loser, 0, bytes).ok());
  Frame* frame = (*db)->txn_manager()->pool()->Lookup(0);
  ASSERT_NE(frame, nullptr);
  ASSERT_TRUE((*db)->txn_manager()->pool()->PropagateFrame(frame).ok());
  (*db)->Crash();

  obs::FlightRecorder* flight = (*db)->obs()->flight();
  ASSERT_NE(flight, nullptr);
  EXPECT_EQ(flight->trigger_count(), 0u);
  // Budget 0: the first recovery mutation trips the crash point, which must
  // dump the flight recorder before the attempt unwinds.
  auto failed = (*db)->RecoverWithInjectedFault(0);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(flight->trigger_count(), 1u);
  EXPECT_NE(flight->last_reason().find("crash-point"), std::string::npos);
  EXPECT_NE(flight->last_dump().find("\"threads\""), std::string::npos);
  // Convergence: a clean retry still recovers.
  (*db)->Crash();
  ASSERT_TRUE((*db)->Recover().ok());
}

TEST(ObsWiringTest, TraceRingOverflowSurfacesDroppedCounter) {
  DatabaseOptions options = SmallDb();
  options.obs.trace_capacity = 4;  // Tiny ring: guaranteed overflow.
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  std::vector<uint8_t> bytes((*db)->user_page_size(), 0xAA);
  for (int i = 0; i < 3; ++i) {
    auto txn = (*db)->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*db)->WritePage(*txn, static_cast<PageId>(i), bytes).ok());
    ASSERT_TRUE((*db)->Commit(*txn).ok());
  }
  const obs::TraceBuffer* trace = (*db)->obs()->trace();
  EXPECT_GT(trace->dropped(), 0u);
  EXPECT_EQ((*db)->SnapshotMetrics().CounterValue("obs.trace_dropped"),
            trace->dropped());
}

}  // namespace
}  // namespace rda
