#include <gtest/gtest.h>

#include "common/random.h"
#include "core/database.h"

namespace rda {
namespace {

DatabaseOptions BaseOptions() {
  DatabaseOptions options;
  options.array.data_pages_per_group = 4;
  options.array.parity_copies = 2;
  options.array.min_data_pages = 48;
  options.array.page_size = 128;
  options.buffer.capacity = 12;
  options.txn.force = false;
  options.txn.rda_undo = true;
  return options;
}

class ArchiveTest : public ::testing::Test {
 protected:
  void Open(const DatabaseOptions& options = BaseOptions()) {
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  Status WriteTxn(PageId page, uint8_t fill) {
    auto txn = db_->Begin();
    RDA_RETURN_IF_ERROR(txn.status());
    RDA_RETURN_IF_ERROR(db_->WritePage(
        *txn, page, std::vector<uint8_t>(db_->user_page_size(), fill)));
    return db_->Commit(*txn);
  }

  uint8_t DiskByte(PageId page) {
    auto payload = db_->RawReadPage(page);
    EXPECT_TRUE(payload.ok());
    return (*payload)[kDataRegionOffset];
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ArchiveTest, RequiresQuiescence) {
  Open();
  auto txn = db_->Begin();
  ASSERT_TRUE(
      db_->WritePage(*txn, 0,
                     std::vector<uint8_t>(db_->user_page_size(), 1))
          .ok());
  EXPECT_TRUE(db_->TakeArchive().IsFailedPrecondition());
  ASSERT_TRUE(db_->Commit(*txn).ok());
  EXPECT_TRUE(db_->TakeArchive().ok());
  EXPECT_TRUE(db_->HasArchive());
}

TEST_F(ArchiveTest, RestoreWithoutArchiveRefused) {
  Open();
  EXPECT_TRUE(db_->RestoreFromArchive().status().IsFailedPrecondition());
}

TEST_F(ArchiveTest, TruncationDropsLogPrefix) {
  Open();
  ASSERT_TRUE(WriteTxn(0, 0x11).ok());
  ASSERT_TRUE(WriteTxn(1, 0x22).ok());
  const Lsn before = db_->log()->flushed_lsn();
  ASSERT_GT(before, 0u);
  ASSERT_TRUE(db_->TakeArchive(/*truncate_log=*/true).ok());
  EXPECT_EQ(db_->log()->base_lsn(), db_->log()->flushed_lsn());
  std::vector<LogRecord> records;
  ASSERT_TRUE(db_->log()->Scan(0, &records).ok());
  EXPECT_TRUE(records.empty());
}

TEST_F(ArchiveTest, CrashRecoveryStillWorksAfterTruncation) {
  Open();
  ASSERT_TRUE(WriteTxn(0, 0x11).ok());
  ASSERT_TRUE(db_->TakeArchive(/*truncate_log=*/true).ok());
  // Post-archive work: a winner and a stolen loser.
  ASSERT_TRUE(WriteTxn(1, 0x22).ok());
  auto loser = db_->Begin();
  ASSERT_TRUE(
      db_->WritePage(*loser, 2,
                     std::vector<uint8_t>(db_->user_page_size(), 0x33))
          .ok());
  Frame* frame = db_->txn_manager()->pool()->Lookup(2);
  ASSERT_TRUE(db_->txn_manager()->pool()->PropagateFrame(frame).ok());

  db_->Crash();
  auto report = db_->Recover();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(DiskByte(0), 0x11);
  EXPECT_EQ(DiskByte(1), 0x22);
  EXPECT_EQ(DiskByte(2), 0x00);
  auto ok = db_->VerifyAllParity();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(ArchiveTest, CatastrophicTwoDiskFailureRestoresFromArchive) {
  Open();
  for (PageId page = 0; page < 16; ++page) {
    ASSERT_TRUE(WriteTxn(page, static_cast<uint8_t>(page + 1)).ok());
  }
  ASSERT_TRUE(db_->TakeArchive().ok());
  // Committed work after the archive survives via the log.
  ASSERT_TRUE(WriteTxn(3, 0xAB).ok());

  // Two disks die: beyond the array's redundancy.
  ASSERT_TRUE(db_->FailDisk(0).ok());
  ASSERT_TRUE(db_->FailDisk(1).ok());
  EXPECT_TRUE(db_->RebuildDisk(0).status().IsFailedPrecondition());

  auto report = db_->RestoreFromArchive();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (PageId page = 0; page < 16; ++page) {
    const uint8_t want = page == 3 ? 0xAB : static_cast<uint8_t>(page + 1);
    EXPECT_EQ(DiskByte(page), want) << "page " << page;
  }
  auto ok = db_->VerifyAllParity();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(ArchiveTest, InFlightWorkSinceArchiveIsLostOnRestore) {
  Open();
  ASSERT_TRUE(WriteTxn(0, 0x11).ok());
  ASSERT_TRUE(db_->TakeArchive().ok());
  auto loser = db_->Begin();
  ASSERT_TRUE(
      db_->WritePage(*loser, 0,
                     std::vector<uint8_t>(db_->user_page_size(), 0x99))
          .ok());
  Frame* frame = db_->txn_manager()->pool()->Lookup(0);
  ASSERT_TRUE(db_->txn_manager()->pool()->PropagateFrame(frame).ok());
  ASSERT_TRUE(db_->FailDisk(0).ok());
  ASSERT_TRUE(db_->FailDisk(1).ok());
  auto report = db_->RestoreFromArchive();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(DiskByte(0), 0x11);  // Loser's steal rolled away with the media.
}

TEST_F(ArchiveTest, DatabaseUsableAfterRestore) {
  Open();
  ASSERT_TRUE(WriteTxn(0, 0x11).ok());
  ASSERT_TRUE(db_->TakeArchive().ok());
  ASSERT_TRUE(db_->FailDisk(2).ok());
  ASSERT_TRUE(db_->FailDisk(3).ok());
  ASSERT_TRUE(db_->RestoreFromArchive().ok());
  ASSERT_TRUE(WriteTxn(5, 0x66).ok());
  EXPECT_EQ(DiskByte(5), 0x00);  // notFORCE: buffered.
  db_->Crash();
  ASSERT_TRUE(db_->Recover().ok());
  EXPECT_EQ(DiskByte(5), 0x66);
}

// ---------------------------------------------------------------------------
// Scrubber.
// ---------------------------------------------------------------------------

TEST_F(ArchiveTest, ScrubOnHealthyArrayRepairsNothing) {
  Open();
  for (PageId page = 0; page < 8; ++page) {
    ASSERT_TRUE(WriteTxn(page, static_cast<uint8_t>(page + 1)).ok());
  }
  ASSERT_TRUE(db_->Checkpoint().ok());
  auto report = db_->Scrub();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->groups_checked, db_->array()->num_groups());
  EXPECT_TRUE(report->repaired.empty());
}

TEST_F(ArchiveTest, ScrubRepairsCorruptedParity) {
  Open();
  ASSERT_TRUE(WriteTxn(0, 0x11).ok());
  ASSERT_TRUE(db_->Checkpoint().ok());
  // Corrupt the valid twin of group 0 behind the engine's back.
  const GroupState& state = db_->parity()->directory().Get(0);
  const PhysicalLocation loc =
      db_->array()->layout().ParityLocation(0, state.valid_twin);
  PageImage bogus(db_->array()->page_size());
  bogus.header.parity_state = ParityState::kCommitted;
  bogus.header.timestamp = 1;
  bogus.payload[40] = 0xEE;
  ASSERT_TRUE(db_->array()->disk(loc.disk)->Write(loc.slot, bogus).ok());

  auto report = db_->Scrub();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->repaired.size(), 1u);
  EXPECT_EQ(report->repaired[0], 0u);
  auto ok = db_->VerifyAllParity();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(ArchiveTest, ScrubSkipsDirtyGroups) {
  Open();
  auto txn = db_->Begin();
  ASSERT_TRUE(
      db_->WritePage(*txn, 0,
                     std::vector<uint8_t>(db_->user_page_size(), 0x55))
          .ok());
  Frame* frame = db_->txn_manager()->pool()->Lookup(0);
  ASSERT_TRUE(db_->txn_manager()->pool()->PropagateFrame(frame).ok());
  auto report = db_->Scrub();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->groups_skipped_dirty, 1u);
  // The transaction can still abort via parity afterwards.
  ASSERT_TRUE(db_->Abort(*txn).ok());
  EXPECT_EQ(DiskByte(0), 0x00);
}

// Log truncation unit coverage at the LogManager level.
TEST(LogTruncateTest, RejectsNonBoundary) {
  LogManager log{LogManager::Options{}};
  LogRecord bot;
  bot.type = LogRecordType::kBot;
  bot.txn = 1;
  ASSERT_TRUE(log.Append(bot).ok());
  ASSERT_TRUE(log.Flush().ok());
  EXPECT_TRUE(log.Truncate(3).IsInvalidArgument());
  EXPECT_TRUE(log.Truncate(log.flushed_lsn() + 10).IsInvalidArgument());
  EXPECT_TRUE(log.Truncate(log.flushed_lsn()).ok());
  EXPECT_EQ(log.base_lsn(), log.flushed_lsn());
}

TEST(LogTruncateTest, LsnsStayAbsoluteAcrossTruncation) {
  LogManager log{LogManager::Options{}};
  LogRecord bot;
  bot.type = LogRecordType::kBot;
  for (TxnId t = 1; t <= 4; ++t) {
    bot.txn = t;
    ASSERT_TRUE(log.Append(bot).ok());
  }
  ASSERT_TRUE(log.Flush().ok());
  std::vector<LogRecord> records;
  ASSERT_TRUE(log.Scan(0, &records).ok());
  ASSERT_EQ(records.size(), 4u);
  const Lsn third = records[2].lsn;
  ASSERT_TRUE(log.Truncate(third).ok());
  ASSERT_TRUE(log.Scan(0, &records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].lsn, third);
  EXPECT_EQ(records[0].txn, 3u);
  // Appends continue at the absolute offset.
  bot.txn = 5;
  auto lsn = log.Append(bot);
  ASSERT_TRUE(lsn.ok());
  EXPECT_GT(*lsn, third);
}

}  // namespace
}  // namespace rda
