// The deterministic schedule fuzzer's own test suite: schedule text
// round-trips, the bounded smoke corpus (every .sched file under
// tests/fuzz_corpus must pass the oracle), a four-class smoke matrix, and
// the self-test that proves the pipeline catches bugs — a deliberately
// planted "recovery drops a committed page" defect must be detected AND
// shrink to a tiny repro.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/runner.h"
#include "fuzz/schedule.h"
#include "fuzz/shrinker.h"

namespace rda::fuzz {
namespace {

TEST(ScheduleText, RoundTripsThroughToStringAndParse) {
  Schedule schedule;
  schedule.seed = 424242;
  schedule.force = false;
  schedule.rda = true;
  schedule.mode = LoggingMode::kRecordLogging;
  schedule.threads = 4;
  schedule.num_steps = 37;
  schedule.crash_points.push_back({12, 0});
  schedule.crash_points.push_back({29, 3});
  schedule.faults.push_back(
      {FaultEvent::Kind::kLatentSector, 5, 17, 0});
  schedule.faults.push_back(
      {FaultEvent::Kind::kTransientRead, 8, 3, 2});
  schedule.faults.push_back(
      {FaultEvent::Kind::kDiskFailOnlineRebuild, 20, 1, 1500});

  const std::string text = schedule.ToString();
  Result<Schedule> parsed = Schedule::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << " from " << text;
  EXPECT_TRUE(*parsed == schedule) << text << " vs " << parsed->ToString();
  // And the text form is a fixpoint.
  EXPECT_EQ(parsed->ToString(), text);
}

TEST(ScheduleText, DefaultsRoundTripToo) {
  Schedule schedule;
  Result<Schedule> parsed = Schedule::Parse(schedule.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(*parsed == schedule);
}

TEST(ScheduleText, RejectsMalformedInput) {
  const char* kBad[] = {
      "",
      "not-a-sched v1 steps=3",
      "rda-sched v2 steps=3",
      "rda-sched v1",                             // steps= is mandatory
      "rda-sched v1 steps=x",
      "rda-sched v1 steps=3 algo=force,rda",      // missing logging mode
      "rda-sched v1 steps=3 algo=force,rda,cake",
      "rda-sched v1 steps=3 threads=0",
      "rda-sched v1 steps=3 crash=5",             // missing recovery_faults
      "rda-sched v1 steps=3 fault=latent:5",      // missing '@'
      "rda-sched v1 steps=3 fault=gremlin@5:1",
      "rda-sched v1 steps=3 wat=7",
  };
  for (const char* text : kBad) {
    EXPECT_FALSE(Schedule::Parse(text).ok()) << "accepted: " << text;
  }
}

TEST(ScheduleText, StepCountCoversWorkloadAndEvents) {
  Result<Schedule> parsed = Schedule::Parse(
      "rda-sched v1 steps=10 crash=3:0,7:1 fault=latent@5:2");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->StepCount(), 13u);
}

// Every algorithm class the paper studies, single-threaded, with a
// mid-stream crash: the oracle must hold. This is the cheap always-on
// smoke version of the fuzz-soak sweep.
TEST(FuzzSmoke, AllFourAlgorithmClassesSurviveACrashSchedule) {
  const struct {
    bool force;
    LoggingMode mode;
  } kClasses[] = {
      {true, LoggingMode::kPageLogging},
      {true, LoggingMode::kRecordLogging},
      {false, LoggingMode::kPageLogging},
      {false, LoggingMode::kRecordLogging},
  };
  for (const auto& cls : kClasses) {
    for (bool rda : {true, false}) {
      Schedule schedule;
      schedule.seed = 17 + (cls.force ? 1 : 0) + (rda ? 2 : 0) +
                      (cls.mode == LoggingMode::kPageLogging ? 4 : 0);
      schedule.force = cls.force;
      schedule.rda = rda;
      schedule.mode = cls.mode;
      schedule.threads = 1;
      schedule.num_steps = 8;
      schedule.crash_points.push_back({13, 0});
      Result<RunOutcome> outcome = RunSchedule(schedule);
      ASSERT_TRUE(outcome.ok())
          << schedule.ToString() << ": " << outcome.status().ToString();
      EXPECT_TRUE(outcome->passed)
          << schedule.ToString() << ": " << outcome->violation;
      EXPECT_GT(outcome->committed_txns, 0u) << schedule.ToString();
      EXPECT_GE(outcome->recoveries, 2u) << schedule.ToString();
    }
  }
}

TEST(FuzzSmoke, MidRecoveryCrashScheduleConverges) {
  Result<Schedule> schedule = Schedule::Parse(
      "rda-sched v1 seed=88 algo=force,rda,page threads=1 steps=10 "
      "crash=11:2,23:4");
  ASSERT_TRUE(schedule.ok());
  Result<RunOutcome> outcome = RunSchedule(*schedule);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->passed) << outcome->violation;
}

// The committed seed corpus: every .sched file under tests/fuzz_corpus is
// replayed and must pass. New minimized repros get committed here (or
// promoted to a named regression test) so they run forever after.
TEST(FuzzCorpus, EveryCommittedScheduleStillPasses) {
  const std::filesystem::path dir = RDA_FUZZ_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  size_t ran = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".sched") {
      continue;
    }
    std::ifstream in(entry.path());
    std::string text;
    std::getline(in, text);
    ASSERT_FALSE(text.empty()) << entry.path();
    Result<Schedule> schedule = Schedule::Parse(text);
    ASSERT_TRUE(schedule.ok())
        << entry.path() << ": " << schedule.status().ToString();
    Result<RunOutcome> outcome = RunSchedule(*schedule);
    ASSERT_TRUE(outcome.ok())
        << entry.path() << ": " << outcome.status().ToString();
    EXPECT_TRUE(outcome->passed)
        << entry.path() << " (" << text << "): " << outcome->violation;
    ++ran;
  }
  EXPECT_GE(ran, 7u) << "seed corpus went missing from " << dir;
}

// The same corpus with the async I/O engine in the path: every committed
// schedule must pass when its Database runs with io.width > 0. Any
// divergence the oracle can see — a dropped journal entry at a crash
// point, a stale read served from a purged queue, a parity image the
// coalescer merged wrong — fails here with the schedule named.
TEST(FuzzCorpus, EveryCommittedSchedulePassesUnderAsyncIo) {
  const std::filesystem::path dir = RDA_FUZZ_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  FuzzOptions async_io;
  async_io.io_width = 2;
  size_t ran = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".sched") {
      continue;
    }
    std::ifstream in(entry.path());
    std::string text;
    std::getline(in, text);
    ASSERT_FALSE(text.empty()) << entry.path();
    Result<Schedule> schedule = Schedule::Parse(text);
    ASSERT_TRUE(schedule.ok())
        << entry.path() << ": " << schedule.status().ToString();
    Result<RunOutcome> outcome = RunSchedule(*schedule, async_io);
    ASSERT_TRUE(outcome.ok())
        << entry.path() << ": " << outcome.status().ToString();
    EXPECT_TRUE(outcome->passed)
        << entry.path() << " (" << text << ", async): " << outcome->violation;
    ++ran;
  }
  EXPECT_GE(ran, 7u) << "seed corpus went missing from " << dir;
}

// The four-class crash-schedule smoke matrix again, async engine enabled:
// the width=2 path must satisfy the same oracle on every algorithm class.
TEST(FuzzSmoke, AllFourAlgorithmClassesSurviveACrashScheduleAsync) {
  const struct {
    bool force;
    LoggingMode mode;
  } kClasses[] = {
      {true, LoggingMode::kPageLogging},
      {true, LoggingMode::kRecordLogging},
      {false, LoggingMode::kPageLogging},
      {false, LoggingMode::kRecordLogging},
  };
  FuzzOptions async_io;
  async_io.io_width = 2;
  for (const auto& cls : kClasses) {
    for (bool rda : {true, false}) {
      Schedule schedule;
      schedule.seed = 17 + (cls.force ? 1 : 0) + (rda ? 2 : 0) +
                      (cls.mode == LoggingMode::kPageLogging ? 4 : 0);
      schedule.force = cls.force;
      schedule.rda = rda;
      schedule.mode = cls.mode;
      schedule.threads = 1;
      schedule.num_steps = 8;
      schedule.crash_points.push_back({13, 0});
      Result<RunOutcome> outcome = RunSchedule(schedule, async_io);
      ASSERT_TRUE(outcome.ok())
          << schedule.ToString() << ": " << outcome.status().ToString();
      EXPECT_TRUE(outcome->passed)
          << schedule.ToString() << " (async): " << outcome->violation;
      EXPECT_GT(outcome->committed_txns, 0u) << schedule.ToString();
      EXPECT_GE(outcome->recoveries, 2u) << schedule.ToString();
    }
  }
}

// Self-test of the whole pipeline: plant a known bug (recovery silently
// zeroes a committed page), prove the oracle catches it, prove the
// shrinker reduces the repro to a handful of steps, and prove the
// minimized schedule still distinguishes buggy from correct.
TEST(FuzzSelfTest, PlantedRecoveryBugIsCaughtAndShrinksSmall) {
  Result<Schedule> parsed = Schedule::Parse(
      "rda-sched v1 seed=7 algo=force,rda,page threads=1 steps=10 "
      "crash=12:0 fault=latent@5:3");
  ASSERT_TRUE(parsed.ok());
  FuzzOptions buggy;
  buggy.bug = InjectedBug::kDropRecoveredPage;

  Result<RunOutcome> outcome = RunSchedule(*parsed, buggy);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_FALSE(outcome->passed) << "planted bug went undetected";

  Result<ShrinkResult> shrunk = Shrink(*parsed, buggy);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status().ToString();
  EXPECT_LE(shrunk->minimized.StepCount(), 5u)
      << "repro did not minimize: " << shrunk->minimized.ToString();
  EXPECT_FALSE(shrunk->violation.empty());

  // The minimized schedule still fails under the bug...
  Result<RunOutcome> replay = RunSchedule(shrunk->minimized, buggy);
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->passed) << shrunk->minimized.ToString();
  // ...and passes on the correct engine (it pins the bug, not the fuzzer).
  Result<RunOutcome> clean = RunSchedule(shrunk->minimized);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->passed)
      << shrunk->minimized.ToString() << ": " << clean->violation;
}

TEST(FuzzSelfTest, ShrinkRefusesAPassingSchedule) {
  Schedule schedule;
  schedule.num_steps = 3;
  Result<ShrinkResult> shrunk = Shrink(schedule);
  ASSERT_FALSE(shrunk.ok());
  EXPECT_TRUE(shrunk.status().IsFailedPrecondition())
      << shrunk.status().ToString();
}

TEST(FuzzMultiThreaded, FourWorkersWithCrashAndLatentFaultHoldUp) {
  Result<Schedule> schedule = Schedule::Parse(
      "rda-sched v1 seed=913 algo=noforce,rda,page threads=4 steps=12 "
      "crash=6:0 fault=latent@3:9");
  ASSERT_TRUE(schedule.ok());
  Result<RunOutcome> outcome = RunSchedule(*schedule);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->passed) << outcome->violation;
  EXPECT_GT(outcome->committed_txns, 0u);
}

}  // namespace
}  // namespace rda::fuzz
