file(REMOVE_RECURSE
  "CMakeFiles/disk_failure_drill.dir/disk_failure_drill.cpp.o"
  "CMakeFiles/disk_failure_drill.dir/disk_failure_drill.cpp.o.d"
  "disk_failure_drill"
  "disk_failure_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_failure_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
