# Empty dependencies file for disk_failure_drill.
# This may be replaced when dependencies are built.
