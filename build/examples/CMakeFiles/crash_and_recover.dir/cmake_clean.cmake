file(REMOVE_RECURSE
  "CMakeFiles/crash_and_recover.dir/crash_and_recover.cpp.o"
  "CMakeFiles/crash_and_recover.dir/crash_and_recover.cpp.o.d"
  "crash_and_recover"
  "crash_and_recover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_and_recover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
