# Empty dependencies file for crash_and_recover.
# This may be replaced when dependencies are built.
