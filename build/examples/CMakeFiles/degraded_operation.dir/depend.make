# Empty dependencies file for degraded_operation.
# This may be replaced when dependencies are built.
