file(REMOVE_RECURSE
  "CMakeFiles/degraded_operation.dir/degraded_operation.cpp.o"
  "CMakeFiles/degraded_operation.dir/degraded_operation.cpp.o.d"
  "degraded_operation"
  "degraded_operation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degraded_operation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
