
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/kv_store_demo.cpp" "examples/CMakeFiles/kv_store_demo.dir/kv_store_demo.cpp.o" "gcc" "examples/CMakeFiles/kv_store_demo.dir/kv_store_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rda_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rda_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rda_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rda_parity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rda_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rda_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rda_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rda_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rda_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
