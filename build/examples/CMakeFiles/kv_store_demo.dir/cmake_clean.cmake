file(REMOVE_RECURSE
  "CMakeFiles/kv_store_demo.dir/kv_store_demo.cpp.o"
  "CMakeFiles/kv_store_demo.dir/kv_store_demo.cpp.o.d"
  "kv_store_demo"
  "kv_store_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_store_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
