# Empty dependencies file for anchors_report.
# This may be replaced when dependencies are built.
