file(REMOVE_RECURSE
  "CMakeFiles/anchors_report.dir/anchors_report.cc.o"
  "CMakeFiles/anchors_report.dir/anchors_report.cc.o.d"
  "anchors_report"
  "anchors_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchors_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
