file(REMOVE_RECURSE
  "CMakeFiles/ablation_layouts.dir/ablation_layouts.cc.o"
  "CMakeFiles/ablation_layouts.dir/ablation_layouts.cc.o.d"
  "ablation_layouts"
  "ablation_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
