# Empty dependencies file for ablation_layouts.
# This may be replaced when dependencies are built.
