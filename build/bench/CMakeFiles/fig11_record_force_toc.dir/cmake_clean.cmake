file(REMOVE_RECURSE
  "CMakeFiles/fig11_record_force_toc.dir/fig11_record_force_toc.cc.o"
  "CMakeFiles/fig11_record_force_toc.dir/fig11_record_force_toc.cc.o.d"
  "fig11_record_force_toc"
  "fig11_record_force_toc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_record_force_toc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
