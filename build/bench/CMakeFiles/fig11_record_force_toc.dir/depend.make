# Empty dependencies file for fig11_record_force_toc.
# This may be replaced when dependencies are built.
