
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_twin_vs_single.cc" "bench/CMakeFiles/ablation_twin_vs_single.dir/ablation_twin_vs_single.cc.o" "gcc" "bench/CMakeFiles/ablation_twin_vs_single.dir/ablation_twin_vs_single.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rda_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rda_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rda_parity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rda_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rda_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rda_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rda_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rda_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rda_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
