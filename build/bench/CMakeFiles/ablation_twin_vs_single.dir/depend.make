# Empty dependencies file for ablation_twin_vs_single.
# This may be replaced when dependencies are built.
