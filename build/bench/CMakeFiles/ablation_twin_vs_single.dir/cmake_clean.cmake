file(REMOVE_RECURSE
  "CMakeFiles/ablation_twin_vs_single.dir/ablation_twin_vs_single.cc.o"
  "CMakeFiles/ablation_twin_vs_single.dir/ablation_twin_vs_single.cc.o.d"
  "ablation_twin_vs_single"
  "ablation_twin_vs_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_twin_vs_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
