# Empty dependencies file for recovery_cost.
# This may be replaced when dependencies are built.
