file(REMOVE_RECURSE
  "CMakeFiles/recovery_cost.dir/recovery_cost.cc.o"
  "CMakeFiles/recovery_cost.dir/recovery_cost.cc.o.d"
  "recovery_cost"
  "recovery_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
