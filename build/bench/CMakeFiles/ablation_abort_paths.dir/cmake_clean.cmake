file(REMOVE_RECURSE
  "CMakeFiles/ablation_abort_paths.dir/ablation_abort_paths.cc.o"
  "CMakeFiles/ablation_abort_paths.dir/ablation_abort_paths.cc.o.d"
  "ablation_abort_paths"
  "ablation_abort_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_abort_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
