# Empty compiler generated dependencies file for ablation_abort_paths.
# This may be replaced when dependencies are built.
