file(REMOVE_RECURSE
  "CMakeFiles/fig12_record_noforce_acc.dir/fig12_record_noforce_acc.cc.o"
  "CMakeFiles/fig12_record_noforce_acc.dir/fig12_record_noforce_acc.cc.o.d"
  "fig12_record_noforce_acc"
  "fig12_record_noforce_acc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_record_noforce_acc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
