# Empty compiler generated dependencies file for fig12_record_noforce_acc.
# This may be replaced when dependencies are built.
