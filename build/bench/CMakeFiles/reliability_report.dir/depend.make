# Empty dependencies file for reliability_report.
# This may be replaced when dependencies are built.
