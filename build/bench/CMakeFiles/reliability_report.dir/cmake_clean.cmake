file(REMOVE_RECURSE
  "CMakeFiles/reliability_report.dir/reliability_report.cc.o"
  "CMakeFiles/reliability_report.dir/reliability_report.cc.o.d"
  "reliability_report"
  "reliability_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
