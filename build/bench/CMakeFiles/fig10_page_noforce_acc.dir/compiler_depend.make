# Empty compiler generated dependencies file for fig10_page_noforce_acc.
# This may be replaced when dependencies are built.
