file(REMOVE_RECURSE
  "CMakeFiles/fig10_page_noforce_acc.dir/fig10_page_noforce_acc.cc.o"
  "CMakeFiles/fig10_page_noforce_acc.dir/fig10_page_noforce_acc.cc.o.d"
  "fig10_page_noforce_acc"
  "fig10_page_noforce_acc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_page_noforce_acc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
