# Empty dependencies file for fig13_benefit_vs_s.
# This may be replaced when dependencies are built.
