file(REMOVE_RECURSE
  "CMakeFiles/fig13_benefit_vs_s.dir/fig13_benefit_vs_s.cc.o"
  "CMakeFiles/fig13_benefit_vs_s.dir/fig13_benefit_vs_s.cc.o.d"
  "fig13_benefit_vs_s"
  "fig13_benefit_vs_s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_benefit_vs_s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
