# Empty dependencies file for fig09_page_force_toc.
# This may be replaced when dependencies are built.
