file(REMOVE_RECURSE
  "CMakeFiles/fig09_page_force_toc.dir/fig09_page_force_toc.cc.o"
  "CMakeFiles/fig09_page_force_toc.dir/fig09_page_force_toc.cc.o.d"
  "fig09_page_force_toc"
  "fig09_page_force_toc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_page_force_toc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
