file(REMOVE_RECURSE
  "librda_txn.a"
)
