file(REMOVE_RECURSE
  "CMakeFiles/rda_txn.dir/txn/record_page.cc.o"
  "CMakeFiles/rda_txn.dir/txn/record_page.cc.o.d"
  "CMakeFiles/rda_txn.dir/txn/transaction.cc.o"
  "CMakeFiles/rda_txn.dir/txn/transaction.cc.o.d"
  "CMakeFiles/rda_txn.dir/txn/transaction_manager.cc.o"
  "CMakeFiles/rda_txn.dir/txn/transaction_manager.cc.o.d"
  "librda_txn.a"
  "librda_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
