# Empty dependencies file for rda_txn.
# This may be replaced when dependencies are built.
