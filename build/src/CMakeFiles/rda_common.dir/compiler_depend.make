# Empty compiler generated dependencies file for rda_common.
# This may be replaced when dependencies are built.
