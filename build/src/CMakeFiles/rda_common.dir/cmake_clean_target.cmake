file(REMOVE_RECURSE
  "librda_common.a"
)
