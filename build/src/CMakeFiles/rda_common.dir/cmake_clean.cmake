file(REMOVE_RECURSE
  "CMakeFiles/rda_common.dir/common/crc32.cc.o"
  "CMakeFiles/rda_common.dir/common/crc32.cc.o.d"
  "CMakeFiles/rda_common.dir/common/random.cc.o"
  "CMakeFiles/rda_common.dir/common/random.cc.o.d"
  "CMakeFiles/rda_common.dir/common/status.cc.o"
  "CMakeFiles/rda_common.dir/common/status.cc.o.d"
  "CMakeFiles/rda_common.dir/common/xor_util.cc.o"
  "CMakeFiles/rda_common.dir/common/xor_util.cc.o.d"
  "librda_common.a"
  "librda_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
