file(REMOVE_RECURSE
  "CMakeFiles/rda_kv.dir/kv/btree.cc.o"
  "CMakeFiles/rda_kv.dir/kv/btree.cc.o.d"
  "CMakeFiles/rda_kv.dir/kv/kv_store.cc.o"
  "CMakeFiles/rda_kv.dir/kv/kv_store.cc.o.d"
  "librda_kv.a"
  "librda_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
