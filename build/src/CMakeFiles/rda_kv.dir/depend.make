# Empty dependencies file for rda_kv.
# This may be replaced when dependencies are built.
