file(REMOVE_RECURSE
  "librda_kv.a"
)
