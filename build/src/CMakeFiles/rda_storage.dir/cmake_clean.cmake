file(REMOVE_RECURSE
  "CMakeFiles/rda_storage.dir/storage/data_page_meta.cc.o"
  "CMakeFiles/rda_storage.dir/storage/data_page_meta.cc.o.d"
  "CMakeFiles/rda_storage.dir/storage/data_striping_layout.cc.o"
  "CMakeFiles/rda_storage.dir/storage/data_striping_layout.cc.o.d"
  "CMakeFiles/rda_storage.dir/storage/disk.cc.o"
  "CMakeFiles/rda_storage.dir/storage/disk.cc.o.d"
  "CMakeFiles/rda_storage.dir/storage/disk_array.cc.o"
  "CMakeFiles/rda_storage.dir/storage/disk_array.cc.o.d"
  "CMakeFiles/rda_storage.dir/storage/parity_striping_layout.cc.o"
  "CMakeFiles/rda_storage.dir/storage/parity_striping_layout.cc.o.d"
  "librda_storage.a"
  "librda_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
