
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/data_page_meta.cc" "src/CMakeFiles/rda_storage.dir/storage/data_page_meta.cc.o" "gcc" "src/CMakeFiles/rda_storage.dir/storage/data_page_meta.cc.o.d"
  "/root/repo/src/storage/data_striping_layout.cc" "src/CMakeFiles/rda_storage.dir/storage/data_striping_layout.cc.o" "gcc" "src/CMakeFiles/rda_storage.dir/storage/data_striping_layout.cc.o.d"
  "/root/repo/src/storage/disk.cc" "src/CMakeFiles/rda_storage.dir/storage/disk.cc.o" "gcc" "src/CMakeFiles/rda_storage.dir/storage/disk.cc.o.d"
  "/root/repo/src/storage/disk_array.cc" "src/CMakeFiles/rda_storage.dir/storage/disk_array.cc.o" "gcc" "src/CMakeFiles/rda_storage.dir/storage/disk_array.cc.o.d"
  "/root/repo/src/storage/parity_striping_layout.cc" "src/CMakeFiles/rda_storage.dir/storage/parity_striping_layout.cc.o" "gcc" "src/CMakeFiles/rda_storage.dir/storage/parity_striping_layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rda_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
