file(REMOVE_RECURSE
  "librda_storage.a"
)
