# Empty compiler generated dependencies file for rda_storage.
# This may be replaced when dependencies are built.
