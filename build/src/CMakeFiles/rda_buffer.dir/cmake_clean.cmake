file(REMOVE_RECURSE
  "CMakeFiles/rda_buffer.dir/buffer/buffer_pool.cc.o"
  "CMakeFiles/rda_buffer.dir/buffer/buffer_pool.cc.o.d"
  "librda_buffer.a"
  "librda_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
