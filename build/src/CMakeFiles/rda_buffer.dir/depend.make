# Empty dependencies file for rda_buffer.
# This may be replaced when dependencies are built.
