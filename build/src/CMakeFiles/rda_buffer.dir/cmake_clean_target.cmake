file(REMOVE_RECURSE
  "librda_buffer.a"
)
