file(REMOVE_RECURSE
  "CMakeFiles/rda_model.dir/model/figures.cc.o"
  "CMakeFiles/rda_model.dir/model/figures.cc.o.d"
  "CMakeFiles/rda_model.dir/model/page_logging_acc.cc.o"
  "CMakeFiles/rda_model.dir/model/page_logging_acc.cc.o.d"
  "CMakeFiles/rda_model.dir/model/page_logging_force.cc.o"
  "CMakeFiles/rda_model.dir/model/page_logging_force.cc.o.d"
  "CMakeFiles/rda_model.dir/model/probabilities.cc.o"
  "CMakeFiles/rda_model.dir/model/probabilities.cc.o.d"
  "CMakeFiles/rda_model.dir/model/record_logging_acc.cc.o"
  "CMakeFiles/rda_model.dir/model/record_logging_acc.cc.o.d"
  "CMakeFiles/rda_model.dir/model/record_logging_force.cc.o"
  "CMakeFiles/rda_model.dir/model/record_logging_force.cc.o.d"
  "CMakeFiles/rda_model.dir/model/reliability.cc.o"
  "CMakeFiles/rda_model.dir/model/reliability.cc.o.d"
  "CMakeFiles/rda_model.dir/model/throughput.cc.o"
  "CMakeFiles/rda_model.dir/model/throughput.cc.o.d"
  "librda_model.a"
  "librda_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
