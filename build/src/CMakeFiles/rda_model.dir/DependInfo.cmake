
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/figures.cc" "src/CMakeFiles/rda_model.dir/model/figures.cc.o" "gcc" "src/CMakeFiles/rda_model.dir/model/figures.cc.o.d"
  "/root/repo/src/model/page_logging_acc.cc" "src/CMakeFiles/rda_model.dir/model/page_logging_acc.cc.o" "gcc" "src/CMakeFiles/rda_model.dir/model/page_logging_acc.cc.o.d"
  "/root/repo/src/model/page_logging_force.cc" "src/CMakeFiles/rda_model.dir/model/page_logging_force.cc.o" "gcc" "src/CMakeFiles/rda_model.dir/model/page_logging_force.cc.o.d"
  "/root/repo/src/model/probabilities.cc" "src/CMakeFiles/rda_model.dir/model/probabilities.cc.o" "gcc" "src/CMakeFiles/rda_model.dir/model/probabilities.cc.o.d"
  "/root/repo/src/model/record_logging_acc.cc" "src/CMakeFiles/rda_model.dir/model/record_logging_acc.cc.o" "gcc" "src/CMakeFiles/rda_model.dir/model/record_logging_acc.cc.o.d"
  "/root/repo/src/model/record_logging_force.cc" "src/CMakeFiles/rda_model.dir/model/record_logging_force.cc.o" "gcc" "src/CMakeFiles/rda_model.dir/model/record_logging_force.cc.o.d"
  "/root/repo/src/model/reliability.cc" "src/CMakeFiles/rda_model.dir/model/reliability.cc.o" "gcc" "src/CMakeFiles/rda_model.dir/model/reliability.cc.o.d"
  "/root/repo/src/model/throughput.cc" "src/CMakeFiles/rda_model.dir/model/throughput.cc.o" "gcc" "src/CMakeFiles/rda_model.dir/model/throughput.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rda_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
