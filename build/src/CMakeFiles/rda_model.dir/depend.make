# Empty dependencies file for rda_model.
# This may be replaced when dependencies are built.
