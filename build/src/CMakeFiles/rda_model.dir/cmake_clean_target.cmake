file(REMOVE_RECURSE
  "librda_model.a"
)
