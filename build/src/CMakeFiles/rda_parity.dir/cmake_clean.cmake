file(REMOVE_RECURSE
  "CMakeFiles/rda_parity.dir/parity/dirty_set.cc.o"
  "CMakeFiles/rda_parity.dir/parity/dirty_set.cc.o.d"
  "CMakeFiles/rda_parity.dir/parity/twin_parity_manager.cc.o"
  "CMakeFiles/rda_parity.dir/parity/twin_parity_manager.cc.o.d"
  "librda_parity.a"
  "librda_parity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
