# Empty dependencies file for rda_parity.
# This may be replaced when dependencies are built.
