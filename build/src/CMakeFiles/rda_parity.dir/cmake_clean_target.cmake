file(REMOVE_RECURSE
  "librda_parity.a"
)
