# Empty dependencies file for rda_core.
# This may be replaced when dependencies are built.
