file(REMOVE_RECURSE
  "librda_core.a"
)
