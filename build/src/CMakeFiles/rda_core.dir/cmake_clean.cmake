file(REMOVE_RECURSE
  "CMakeFiles/rda_core.dir/core/database.cc.o"
  "CMakeFiles/rda_core.dir/core/database.cc.o.d"
  "librda_core.a"
  "librda_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
