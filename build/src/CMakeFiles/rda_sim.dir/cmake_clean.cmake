file(REMOVE_RECURSE
  "CMakeFiles/rda_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/rda_sim.dir/sim/simulator.cc.o.d"
  "CMakeFiles/rda_sim.dir/sim/workload.cc.o"
  "CMakeFiles/rda_sim.dir/sim/workload.cc.o.d"
  "librda_sim.a"
  "librda_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
