# Empty compiler generated dependencies file for rda_lock.
# This may be replaced when dependencies are built.
