file(REMOVE_RECURSE
  "librda_lock.a"
)
