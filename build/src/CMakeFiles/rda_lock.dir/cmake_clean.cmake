file(REMOVE_RECURSE
  "CMakeFiles/rda_lock.dir/lock/lock_manager.cc.o"
  "CMakeFiles/rda_lock.dir/lock/lock_manager.cc.o.d"
  "librda_lock.a"
  "librda_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
