file(REMOVE_RECURSE
  "CMakeFiles/rda_wal.dir/wal/log_manager.cc.o"
  "CMakeFiles/rda_wal.dir/wal/log_manager.cc.o.d"
  "CMakeFiles/rda_wal.dir/wal/log_record.cc.o"
  "CMakeFiles/rda_wal.dir/wal/log_record.cc.o.d"
  "librda_wal.a"
  "librda_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
