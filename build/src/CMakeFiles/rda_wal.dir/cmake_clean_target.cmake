file(REMOVE_RECURSE
  "librda_wal.a"
)
