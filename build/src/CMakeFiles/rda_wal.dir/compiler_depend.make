# Empty compiler generated dependencies file for rda_wal.
# This may be replaced when dependencies are built.
