file(REMOVE_RECURSE
  "CMakeFiles/rda_recovery.dir/recovery/archive.cc.o"
  "CMakeFiles/rda_recovery.dir/recovery/archive.cc.o.d"
  "CMakeFiles/rda_recovery.dir/recovery/checkpointer.cc.o"
  "CMakeFiles/rda_recovery.dir/recovery/checkpointer.cc.o.d"
  "CMakeFiles/rda_recovery.dir/recovery/crash_recovery.cc.o"
  "CMakeFiles/rda_recovery.dir/recovery/crash_recovery.cc.o.d"
  "CMakeFiles/rda_recovery.dir/recovery/media_recovery.cc.o"
  "CMakeFiles/rda_recovery.dir/recovery/media_recovery.cc.o.d"
  "CMakeFiles/rda_recovery.dir/recovery/scrubber.cc.o"
  "CMakeFiles/rda_recovery.dir/recovery/scrubber.cc.o.d"
  "librda_recovery.a"
  "librda_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
