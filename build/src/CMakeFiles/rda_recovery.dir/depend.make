# Empty dependencies file for rda_recovery.
# This may be replaced when dependencies are built.
