file(REMOVE_RECURSE
  "librda_recovery.a"
)
