# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/parity_test[1]_include.cmake")
include("/root/repo/build/tests/wal_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_test[1]_include.cmake")
include("/root/repo/build/tests/lock_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/archive_test[1]_include.cmake")
include("/root/repo/build/tests/crash_point_test[1]_include.cmake")
include("/root/repo/build/tests/degraded_test[1]_include.cmake")
include("/root/repo/build/tests/database_test[1]_include.cmake")
include("/root/repo/build/tests/media_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
