# Empty compiler generated dependencies file for degraded_test.
# This may be replaced when dependencies are built.
