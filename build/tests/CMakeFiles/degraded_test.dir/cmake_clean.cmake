file(REMOVE_RECURSE
  "CMakeFiles/degraded_test.dir/degraded_test.cc.o"
  "CMakeFiles/degraded_test.dir/degraded_test.cc.o.d"
  "degraded_test"
  "degraded_test.pdb"
  "degraded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degraded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
