file(REMOVE_RECURSE
  "CMakeFiles/crash_point_test.dir/crash_point_test.cc.o"
  "CMakeFiles/crash_point_test.dir/crash_point_test.cc.o.d"
  "crash_point_test"
  "crash_point_test.pdb"
  "crash_point_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_point_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
